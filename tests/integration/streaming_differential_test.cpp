// Differential: TraceMode::kStreaming must be *bit-identical* to the
// materialized reference path — same digest, same statistics, same figure
// curves, same exported TSV bytes — at the pinned scale-0.2/seed-42
// configuration and on a degenerate zero-record trace.  The streaming mode
// is the default, so any drift here is a correctness bug, not a perf note.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzers.hpp"
#include "analysis/iorate.hpp"
#include "analysis/session.hpp"
#include "core/campaign.hpp"
#include "core/export.hpp"
#include "core/stream_study.hpp"
#include "core/study.hpp"
#include "trace/postprocess.hpp"
#include "trace/spill.hpp"

namespace charisma {
namespace {

// The determinism anchor every PR re-verifies (ROADMAP).
constexpr std::uint64_t kExpectedDigest = 0x5d6c862d0a86afe1ull;

struct Fixture {
  core::StudyConfig config;
  core::StudyOutput mat;
  core::StudySummary mat_summary;

  trace::TraceHeader str_header;
  std::uint64_t str_digest = 0;
  std::uint64_t str_records = 0;
  analysis::IoRateResult str_io_rate;
  core::StudySummary str_summary;

  Fixture() {
    config.workload.scale = 0.2;
    config.workload.seed = 42;
    core::StreamedStudyOutput s = core::run_streamed_study(config);
    str_header = s.header;
    str_digest = s.trace_digest;
    str_records = s.streamed_records;
    str_io_rate = s.io_rate;
    str_summary = core::summarize_streamed_study("scale0.2_seed42", config,
                                                 std::move(s));
    mat = core::run_study(config);
    mat_summary = core::summarize_study("scale0.2_seed42", config, mat);
  }
};

const Fixture& fixture() {
  static const Fixture* f = new Fixture();
  return *f;
}

TEST(StreamingDifferential, DigestsMatchAndArePinned) {
  EXPECT_EQ(fixture().str_digest, kExpectedDigest);
  EXPECT_EQ(fixture().mat.raw.digest(), kExpectedDigest);
  EXPECT_EQ(fixture().str_summary.trace_digest,
            fixture().mat_summary.trace_digest);
}

TEST(StreamingDifferential, HeadersAndCountsMatch) {
  const auto& f = fixture();
  EXPECT_EQ(f.str_header.label, f.mat.raw.header.label);
  EXPECT_EQ(f.str_header.trace_start, f.mat.raw.header.trace_start);
  EXPECT_EQ(f.str_header.trace_end, f.mat.raw.header.trace_end);
  EXPECT_EQ(f.str_header.seed, f.mat.raw.header.seed);
  EXPECT_EQ(f.str_records, f.mat.sorted.records.size());
  EXPECT_EQ(f.str_summary.records, f.mat_summary.records);
  EXPECT_EQ(f.str_summary.events_dispatched, f.mat_summary.events_dispatched);
  EXPECT_EQ(f.str_summary.total_ops, f.mat_summary.total_ops);
  EXPECT_EQ(f.str_summary.sim_end, f.mat_summary.sim_end);
}

TEST(StreamingDifferential, MeasuredStatisticsExactlyEqual) {
  const auto& a = fixture().str_summary;
  const auto& b = fixture().mat_summary;
  // Exact (not approximate) equality: the accumulators ARE the
  // implementation the materialized analyzers call, so the doubles must be
  // bitwise identical, not merely close.
  EXPECT_EQ(a.idle_fraction, b.idle_fraction);
  EXPECT_EQ(a.multiprogrammed_fraction, b.multiprogrammed_fraction);
  EXPECT_EQ(a.single_node_job_fraction, b.single_node_job_fraction);
  EXPECT_EQ(a.small_read_fraction, b.small_read_fraction);
  EXPECT_EQ(a.small_write_fraction, b.small_write_fraction);
  EXPECT_EQ(a.temporary_fraction, b.temporary_fraction);
  EXPECT_EQ(a.mode0_fraction, b.mode0_fraction);
}

TEST(StreamingDifferential, FigureCurvesExactlyEqual) {
  const auto& a = fixture().str_summary.figures;
  const auto& b = fixture().mat_summary.figures;
  ASSERT_EQ(a.curves.size(), b.curves.size());
  ASSERT_FALSE(a.curves.empty());
  for (std::size_t i = 0; i < a.curves.size(); ++i) {
    SCOPED_TRACE(a.curves[i].name);
    EXPECT_EQ(a.curves[i].name, b.curves[i].name);
    EXPECT_EQ(a.curves[i].xs, b.curves[i].xs);
    EXPECT_EQ(a.curves[i].ys, b.curves[i].ys);
  }
}

TEST(StreamingDifferential, IoRateTimelineExactlyEqual) {
  const analysis::IoRateResult mat_rate =
      analysis::analyze_io_rate(fixture().mat.sorted);
  const analysis::IoRateResult& str_rate = fixture().str_io_rate;
  ASSERT_EQ(str_rate.timeline.size(), mat_rate.timeline.size());
  for (std::size_t i = 0; i < mat_rate.timeline.size(); ++i) {
    EXPECT_EQ(str_rate.timeline[i].start, mat_rate.timeline[i].start);
    EXPECT_EQ(str_rate.timeline[i].bytes_read, mat_rate.timeline[i].bytes_read);
    EXPECT_EQ(str_rate.timeline[i].bytes_written,
              mat_rate.timeline[i].bytes_written);
    EXPECT_EQ(str_rate.timeline[i].requests, mat_rate.timeline[i].requests);
  }
  EXPECT_EQ(str_rate.mean_mb_per_s, mat_rate.mean_mb_per_s);
  EXPECT_EQ(str_rate.peak_mb_per_s, mat_rate.peak_mb_per_s);
  EXPECT_EQ(str_rate.quiet_fraction, mat_rate.quiet_fraction);
}

TEST(StreamingDifferential, ExportedCampaignTsvsByteIdentical) {
  namespace fs = std::filesystem;
  const auto make_result = [](const core::StudySummary& s) {
    core::CampaignResult r;
    r.studies = {s};
    r.aggregates = core::aggregate_campaign(r.studies);
    r.figure_envelopes = core::fold_figure_envelopes(r.studies);
    return r;
  };
  const std::string base = ::testing::TempDir();
  const std::string dir_str = base + "charisma_diff_str";
  const std::string dir_mat = base + "charisma_diff_mat";
  fs::create_directories(dir_str);
  fs::create_directories(dir_mat);
  (void)core::export_campaign(make_result(fixture().str_summary), dir_str);
  (void)core::export_campaign(make_result(fixture().mat_summary), dir_mat);

  std::set<std::string> names;
  for (const auto& e : fs::directory_iterator(dir_str)) {
    names.insert(e.path().filename().string());
  }
  ASSERT_GT(names.size(), 10u);  // studies + aggregate + per-figure TSVs
  const auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  for (const auto& name : names) {
    SCOPED_TRACE(name);
    ASSERT_TRUE(fs::exists(fs::path(dir_mat) / name));
    EXPECT_EQ(slurp(fs::path(dir_str) / name), slurp(fs::path(dir_mat) / name));
  }
  fs::remove_all(dir_str);
  fs::remove_all(dir_mat);
}

// The spill budget / async / prefetch matrix: every point must land on the
// same digest, the same (bitwise) statistics and figure curves, and the same
// exported TSV bytes as the materialized reference — the tiers move bytes
// between RAM and disk, never change them.  Run at a smaller scale so the
// whole matrix stays test-suite-sized.
TEST(StreamingBudgetMatrix, EveryTierConfigurationMatchesMaterialized) {
  namespace fs = std::filesystem;
  core::StudyConfig config;
  config.workload.scale = 0.05;
  config.workload.seed = 7;
  const core::StudyOutput mat = core::run_study(config);
  const core::StudySummary mat_summary =
      core::summarize_study("budget_matrix", config, mat);

  struct Case {
    const char* name;
    std::int64_t budget_mb;  // memory-tier budget
    bool async;
    bool prefetch;
  };
  const Case cases[] = {
      {"all_disk_sync", 0, false, true},
      {"all_disk_async", 0, true, true},
      {"all_disk_no_prefetch", 0, false, false},
      {"mixed_async", 1, true, true},
      {"all_memory", std::int64_t{4} << 10, true, true},
  };

  const auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  const auto export_to = [](const core::StudySummary& s,
                            const std::string& dir) {
    core::CampaignResult r;
    r.studies = {s};
    r.aggregates = core::aggregate_campaign(r.studies);
    r.figure_envelopes = core::fold_figure_envelopes(r.studies);
    fs::create_directories(dir);
    (void)core::export_campaign(r, dir);
  };
  const std::string mat_dir = ::testing::TempDir() + "charisma_matrix_mat";
  export_to(mat_summary, mat_dir);

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    core::StreamOptions sopts;
    sopts.spill_budget_mb = c.budget_mb;
    sopts.async_spill = c.async;
    sopts.prefetch = c.prefetch;
    core::StreamedStudyOutput out = core::run_streamed_study(config, sopts);

    EXPECT_EQ(out.trace_digest, mat.raw.digest());
    EXPECT_EQ(out.streamed_records, mat.sorted.records.size());
    EXPECT_EQ(out.spill.spill_budget_mb, c.budget_mb);
    if (c.budget_mb == 0) {
      // Budget 0 forces the all-disk pre-tier behavior.
      EXPECT_EQ(out.spill.trace_blocks_in_memory, 0u);
      EXPECT_GT(out.spill.trace_blocks_on_disk, 0u);
      EXPECT_EQ(out.spill.ops_chunks_in_memory, 0u);
      EXPECT_GT(out.spill.spill_bytes_written, 0);
    } else if (c.budget_mb == 1) {
      // 1 MiB is mid-trace for scale 0.05: both tiers populated.
      EXPECT_GT(out.spill.trace_blocks_in_memory, 0u);
      EXPECT_GT(out.spill.trace_blocks_on_disk, 0u);
    } else {
      // A huge budget keeps everything resident: zero file I/O.
      EXPECT_EQ(out.spill.trace_blocks_on_disk, 0u);
      EXPECT_EQ(out.spill.ops_chunks_on_disk, 0u);
      EXPECT_EQ(out.spill.spill_bytes_written, 0);
      EXPECT_EQ(out.spill.spill_bytes_read, 0);
    }

    const core::StudySummary summary =
        core::summarize_streamed_study("budget_matrix", config,
                                       std::move(out));
    EXPECT_EQ(summary.trace_digest, mat_summary.trace_digest);
    EXPECT_EQ(summary.idle_fraction, mat_summary.idle_fraction);
    EXPECT_EQ(summary.small_read_fraction, mat_summary.small_read_fraction);
    EXPECT_EQ(summary.small_write_fraction, mat_summary.small_write_fraction);
    EXPECT_EQ(summary.temporary_fraction, mat_summary.temporary_fraction);
    EXPECT_EQ(summary.mode0_fraction, mat_summary.mode0_fraction);
    ASSERT_EQ(summary.figures.curves.size(),
              mat_summary.figures.curves.size());
    for (std::size_t i = 0; i < summary.figures.curves.size(); ++i) {
      SCOPED_TRACE(summary.figures.curves[i].name);
      EXPECT_EQ(summary.figures.curves[i].ys,
                mat_summary.figures.curves[i].ys);
    }

    const std::string dir =
        ::testing::TempDir() + "charisma_matrix_" + c.name;
    export_to(summary, dir);
    for (const auto& e : fs::directory_iterator(mat_dir)) {
      const auto name = e.path().filename();
      SCOPED_TRACE(name.string());
      ASSERT_TRUE(fs::exists(fs::path(dir) / name));
      EXPECT_EQ(slurp(fs::path(dir) / name), slurp(e.path()));
    }
    fs::remove_all(dir);
  }
  fs::remove_all(mat_dir);
}

// A trace with no records at all must flow through both pipelines without
// dividing by zero or diverging: empty store, empty histograms, equal
// (empty) everything.
TEST(StreamingDifferential, ZeroRecordTraceBothModes) {
  trace::TraceFile empty;
  empty.header.compute_nodes = 4;
  empty.header.io_nodes = 2;
  empty.header.trace_start = 0;
  empty.header.trace_end = 0;
  empty.header.label = "degenerate";

  // Materialized path.
  const trace::SortedTrace sorted = trace::postprocess(empty);
  const analysis::SessionStore mat_store(sorted);
  const analysis::RequestSizeResult mat_req =
      analysis::analyze_request_sizes(sorted);

  // Streaming path, through a finished zero-block spill.
  const std::string path = ::testing::TempDir() + "charisma_empty.spill";
  trace::SpillWriter writer(path, empty.header);
  const trace::SpilledTrace spilled = writer.finish(empty.header.trace_end);
  EXPECT_EQ(spilled.digest(), empty.digest());

  analysis::SessionAccumulator sessions;
  analysis::RequestSizeAccumulator requests;
  analysis::IoRateAccumulator io_rate(0, 0);
  EXPECT_EQ(trace::stream_postprocess(spilled, {&sessions, &requests,
                                                &io_rate}),
            0u);
  const analysis::SessionStore str_store = sessions.take(spilled.header);
  const analysis::RequestSizeResult str_req = requests.finish();
  const analysis::IoRateResult str_rate = io_rate.finish();

  EXPECT_EQ(str_store.read_only_sessions(), mat_store.read_only_sessions());
  EXPECT_TRUE(str_store.read_only_sessions().empty());
  EXPECT_EQ(str_req.small_read_fraction, mat_req.small_read_fraction);
  EXPECT_EQ(str_req.small_write_fraction, mat_req.small_write_fraction);
  EXPECT_EQ(str_rate.mean_mb_per_s,
            analysis::analyze_io_rate(sorted).mean_mb_per_s);

  // The degenerate case must not poison figure collection either.
  const auto str_figs = analysis::collect_trace_figures(
      str_store, str_req, empty.header.block_size);
  const auto mat_figs = analysis::collect_trace_figures(
      mat_store, mat_req, empty.header.block_size);
  ASSERT_EQ(str_figs.curves.size(), mat_figs.curves.size());
  for (std::size_t i = 0; i < str_figs.curves.size(); ++i) {
    EXPECT_EQ(str_figs.curves[i].ys, mat_figs.curves[i].ys);
  }
}

}  // namespace
}  // namespace charisma
