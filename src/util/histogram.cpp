#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace charisma::util {

void Histogram::add(std::int64_t value, double weight) {
  if (weight == 0.0) return;
  bins_[value] += weight;
  total_ += weight;
}

double Histogram::weight_at(std::int64_t value) const noexcept {
  const auto it = bins_.find(value);
  return it == bins_.end() ? 0.0 : it->second;
}

double Histogram::fraction_at_or_below(std::int64_t x) const noexcept {
  if (total_ <= 0.0) return 0.0;
  double acc = 0.0;
  for (const auto& [v, w] : bins_) {
    if (v > x) break;
    acc += w;
  }
  return acc / total_;
}

Cdf::Cdf(const Histogram& h) {
  points_.reserve(h.bins().size());
  const double total = h.total_weight();
  if (total <= 0.0) return;
  double acc = 0.0;
  for (const auto& [v, w] : h.bins()) {
    acc += w;
    points_.push_back({static_cast<double>(v), acc / total});
  }
  if (!points_.empty()) points_.back().cumulative_fraction = 1.0;
}

Cdf Cdf::from_samples(std::vector<double> samples) {
  Cdf cdf;
  if (samples.empty()) return cdf;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  std::size_t i = 0;
  while (i < samples.size()) {
    std::size_t j = i;
    while (j < samples.size() && samples[j] == samples[i]) ++j;
    cdf.points_.push_back({samples[i], static_cast<double>(j) / n});
    i = j;
  }
  cdf.points_.back().cumulative_fraction = 1.0;
  return cdf;
}

double Cdf::at(double x) const noexcept {
  if (points_.empty()) return 0.0;
  // Last point with point.x <= x.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), x,
      [](double lhs, const Point& p) { return lhs < p.x; });
  if (it == points_.begin()) return 0.0;
  return std::prev(it)->cumulative_fraction;
}

double Cdf::quantile(double q) const noexcept {
  if (points_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), q,
      [](const Point& p, double rhs) { return p.cumulative_fraction < rhs; });
  return it == points_.end() ? points_.back().x : it->x;
}

double Cdf::min() const noexcept {
  return points_.empty() ? 0.0 : points_.front().x;
}

double Cdf::max() const noexcept {
  return points_.empty() ? 0.0 : points_.back().x;
}

std::string Cdf::render_series(const std::vector<double>& xs) const {
  std::ostringstream out;
  for (double x : xs) {
    out << x << '\t' << at(x) << '\n';
  }
  return out.str();
}

std::vector<double> log_spaced(double lo, double hi,
                               std::size_t points_per_decade) {
  std::vector<double> xs;
  if (lo <= 0.0 || hi < lo || points_per_decade == 0) return xs;
  const double step = 1.0 / static_cast<double>(points_per_decade);
  for (double e = std::log10(lo); e <= std::log10(hi) + 1e-9; e += step) {
    xs.push_back(std::pow(10.0, e));
  }
  return xs;
}

}  // namespace charisma::util
