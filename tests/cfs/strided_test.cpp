// Tests for the §5 strided-request interface extension.
#include <gtest/gtest.h>

#include "cfs/client.hpp"

namespace charisma::cfs {
namespace {

class StridedTest : public ::testing::Test {
 protected:
  StridedTest()
      : rng_(1),
        machine_(engine_, ipsc::MachineConfig::tiny(), rng_),
        runtime_(machine_),
        client_(runtime_, 0) {
    auto open = client_.open(1, "f", kRead | kWrite | kCreate,
                             IoMode::kIndependent);
    fd_ = open.fd;
    (void)client_.write(fd_, 100000);
    (void)client_.seek(fd_, 0, Whence::kSet);
  }

  sim::Engine engine_;
  util::Rng rng_;
  ipsc::Machine machine_;
  Runtime runtime_;
  Client client_;
  Fd fd_ = kBadFd;
};

TEST_F(StridedTest, ReadsRegularPattern) {
  const auto r = client_.read_strided(fd_, /*record=*/100, /*interval=*/400,
                                      /*count=*/10);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.offset, 0);
  EXPECT_EQ(r.bytes, 1000);
  // Pointer is past the last element.
  EXPECT_EQ(client_.seek(fd_, 0, Whence::kCurrent), 9 * 500 + 100);
}

TEST_F(StridedTest, EquivalentToSeekReadLoopInCoverage) {
  // Compare the strided grant with a manual seek/read loop on a twin fd.
  Client twin(runtime_, 1);
  auto open = twin.open(1, "f", kRead, IoMode::kIndependent);
  std::int64_t loop_bytes = 0;
  for (int k = 0; k < 10; ++k) {
    (void)twin.seek(open.fd, k * 500, Whence::kSet);
    loop_bytes += twin.read(open.fd, 100).bytes;
  }
  const auto strided = client_.read_strided(fd_, 100, 400, 10);
  EXPECT_EQ(strided.bytes, loop_bytes);
}

TEST_F(StridedTest, UsesOneMessagePerIoNodeNotPerElement) {
  const auto before = client_.io_messages();
  const auto r = client_.read_strided(fd_, 100, 400, 20);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.bytes, 20 * 100);
  const auto messages = client_.io_messages() - before;
  // 20 sub-block elements spanning blocks 0..2, declustered over the tiny
  // machine's 2 I/O nodes: exactly one request message per involved node.
  EXPECT_EQ(messages, 2u);
}

TEST_F(StridedTest, PatternWithinOneBlockUsesOneMessage) {
  const auto before = client_.io_messages();
  // 5 elements inside block 0 (offsets 0..95): one I/O node involved.
  const auto r = client_.read_strided(fd_, 10, 10, 5);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.bytes, 50);
  EXPECT_EQ(client_.io_messages() - before, 1u);
}

TEST_F(StridedTest, ClipsAtEof) {
  (void)client_.seek(fd_, 99950, Whence::kSet);
  const auto r = client_.read_strided(fd_, 100, 100, 5);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.bytes, 50);  // one clipped element
  const auto r2 = client_.read_strided(fd_, 100, 100, 5);
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(r2.bytes, 0);  // fully past EOF
}

TEST_F(StridedTest, ElementsBeyondEofDropped) {
  (void)client_.seek(fd_, 99000, Whence::kSet);
  // Elements at 99000, 99500, 100000(past), ...
  const auto r = client_.read_strided(fd_, 100, 400, 10);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.bytes, 200);
}

TEST_F(StridedTest, RejectsBadParameters) {
  EXPECT_FALSE(client_.read_strided(fd_, 0, 10, 5).ok);
  EXPECT_FALSE(client_.read_strided(fd_, 100, -1, 5).ok);
  EXPECT_FALSE(client_.read_strided(fd_, 100, 10, 0).ok);
  EXPECT_FALSE(client_.read_strided(999, 100, 10, 5).ok);
}

TEST_F(StridedTest, RejectsSharedPointerModes) {
  Client other(runtime_, 2);
  auto open = other.open(2, "f", kRead, IoMode::kShared);
  ASSERT_TRUE(open.ok);
  const auto r = other.read_strided(open.fd, 100, 100, 2);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("mode 0"), std::string::npos);
}

TEST_F(StridedTest, ZeroIntervalDegeneratesToSequentialRead) {
  const auto strided = client_.read_strided(fd_, 100, 0, 10);
  ASSERT_TRUE(strided.ok);
  EXPECT_EQ(strided.bytes, 1000);
  EXPECT_EQ(client_.seek(fd_, 0, Whence::kCurrent), 1000);
}

TEST_F(StridedTest, CompletionTimeBeatsElementWiseLoop) {
  // The whole point of §5: fewer messages, lower total latency.
  Client twin(runtime_, 1);
  auto open = twin.open(1, "f", kRead, IoMode::kIndependent);
  const auto t0 = engine_.now();
  util::MicroSec loop_done = t0;
  for (int k = 0; k < 50; ++k) {
    (void)twin.seek(open.fd, k * 500, Whence::kSet);
    const auto r = twin.read(open.fd, 100);
    // Sequential issue: the loop cannot overlap its own requests.
    loop_done += r.completed_at - t0;
  }
  const auto strided = client_.read_strided(fd_, 100, 400, 50);
  EXPECT_LT(strided.completed_at - t0, loop_done - t0);
}

}  // namespace
}  // namespace charisma::cfs
