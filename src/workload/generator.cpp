#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace charisma::workload {

using util::kHour;
using util::kKiB;
using util::kMiB;
using util::kMillisecond;
using util::kSecond;
using util::MicroSec;
using util::Rng;

const char* to_string(Archetype a) noexcept {
  switch (a) {
    case Archetype::kBroadcastRead: return "broadcast_read";
    case Archetype::kCfdSolver: return "cfd_solver";
    case Archetype::kSlabRead: return "slab_read";
    case Archetype::kCheckpointWrite: return "checkpoint_write";
    case Archetype::kSingleDump: return "single_dump";
    case Archetype::kRwUpdate: return "rw_update";
    case Archetype::kTempFile: return "temp_file";
    case Archetype::kPostprocess: return "postprocess";
    case Archetype::kQuadTool: return "quad_tool";
    case Archetype::kSharedPointer: return "shared_pointer";
    case Archetype::kStatusCheck: return "status_check";
    case Archetype::kSystem: return "system";
  }
  return "?";
}

bool archetype_from_string(std::string_view name, Archetype* out) noexcept {
  static constexpr Archetype kAll[] = {
      Archetype::kBroadcastRead, Archetype::kCfdSolver,
      Archetype::kSlabRead,      Archetype::kCheckpointWrite,
      Archetype::kSingleDump,    Archetype::kRwUpdate,
      Archetype::kTempFile,      Archetype::kPostprocess,
      Archetype::kQuadTool,      Archetype::kSharedPointer,
      Archetype::kStatusCheck,   Archetype::kSystem,
  };
  for (const Archetype a : kAll) {
    if (name == to_string(a)) {
      if (out != nullptr) *out = a;
      return true;
    }
  }
  return false;
}

WorkloadConfig WorkloadConfig::nas_1993() { return WorkloadConfig{}; }

WorkloadConfig WorkloadConfig::smoke() {
  WorkloadConfig c;
  c.scale = 0.01;
  c.seed = 7;
  return c;
}

namespace {

/// Node-count distribution for multi-node jobs (Figure 2's shape: all
/// powers of two, mid-size cubes most popular by count, 128-node jobs
/// common enough to dominate node-hours).
std::int32_t draw_multi_nodes(Rng& rng) {
  static constexpr double kWeights[] = {0.07, 0.13, 0.15, 0.18,
                                        0.21, 0.16, 0.10};
  const auto i = rng.weighted(kWeights);  // 2^(i+1)
  return 1 << (i + 1);
}

std::int64_t clampi(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return std::clamp(v, lo, hi);
}

/// Small request ("record") size: 1-2 distinct sizes per file is a paper
/// finding (Table 3), so a file's record size is drawn once and reused.
std::int64_t draw_record(Rng& rng, const SizeConfig& s) {
  // Mostly round-ish sizes programmers pick: multiples of 8 around a few
  // hundred bytes, occasionally a few KB.
  const double u = rng.uniform01();
  std::int64_t r;
  if (u < 0.65) {
    r = 8 * rng.uniform_range(10, 64);        // 80 .. 512
  } else if (u < 0.92) {
    r = 64 * rng.uniform_range(4, 24);        // 256 .. 1536
  } else {
    r = 256 * rng.uniform_range(4, 12);       // 1 KB .. 3 KB
  }
  return clampi(r, s.record_min, s.record_max);
}

std::int64_t draw_chunk(Rng& rng, const SizeConfig& s) {
  const std::int64_t r = 64 * kKiB * rng.uniform_range(2, 16);  // 128K..1M
  return clampi(r, s.chunk_min, s.chunk_max);
}

/// Principal file size (Figure 3): lognormal body with two application
/// clusters.
std::int64_t draw_file_size(Rng& rng, const SizeConfig& s) {
  if (rng.chance(s.cluster_fraction)) {
    const std::int64_t center =
        rng.chance(0.55) ? s.cluster_small : s.cluster_large;
    // +-10% around the cluster (same app, slightly different runs).
    const double jitter = 0.9 + 0.2 * rng.uniform01();
    return clampi(static_cast<std::int64_t>(center * jitter), s.file_min,
                  s.file_max);
  }
  const double v = rng.lognormal(s.file_lognormal_mu, s.file_lognormal_sigma);
  return clampi(static_cast<std::int64_t>(v), s.file_min, s.file_max);
}

struct Pools {
  // Index ranges into GeneratedWorkload::inputs.
  std::vector<std::int32_t> configs;  // small parameter/deck files
  std::vector<std::int32_t> mediums;  // general shared inputs
  std::vector<std::int32_t> grids;    // large meshes read interleaved
  std::vector<std::int32_t> bigs;     // multi-MB shared files
};

}  // namespace

GeneratedWorkload generate(const WorkloadConfig& config) {
  util::check(config.scale > 0.0, "scale must be positive");
  Rng rng(config.seed);
  GeneratedWorkload w;
  w.config = config;
  w.window = static_cast<MicroSec>(config.trace_hours * config.scale * kHour);

  const auto scaled = [&](std::int32_t n) {
    const auto v =
        static_cast<std::int32_t>(std::llround(n * config.scale));
    return std::max(v, n > 0 ? 1 : 0);
  };

  // ---- Pre-populated input pools --------------------------------------
  Pools pools;
  const auto add_input = [&](const std::string& path, std::int64_t bytes) {
    w.inputs.push_back({path, bytes});
    return static_cast<std::int32_t>(w.inputs.size() - 1);
  };
  const int n_configs = std::max(8, scaled(400));
  for (int i = 0; i < n_configs; ++i) {
    pools.configs.push_back(add_input(
        "deck/params" + std::to_string(i) + ".in",
        clampi(static_cast<std::int64_t>(rng.lognormal(9.2, 0.8)), 1 * kKiB,
               64 * kKiB)));
  }
  const int n_mediums = std::max(8, scaled(700));
  for (int i = 0; i < n_mediums; ++i) {
    pools.mediums.push_back(add_input("grid/mesh" + std::to_string(i) + ".g",
                                      draw_file_size(rng, config.sizes)));
  }
  // Meshes read interleaved by whole jobs: big enough (hundreds of 4 KB
  // blocks) that rank-progress spread creates long-distance interprocess
  // reuse — the traffic Figure 9's cache-size knee comes from.
  const int n_grids = std::max(8, scaled(250));
  for (int i = 0; i < n_grids; ++i) {
    const std::int64_t bytes =
        rng.chance(0.3)
            ? config.sizes.cluster_large
            : clampi(static_cast<std::int64_t>(rng.lognormal(13.7, 0.8)),
                     256 * kKiB, 4 * kMiB);
    pools.grids.push_back(
        add_input("mesh/big" + std::to_string(i) + ".g", bytes));
  }
  const int n_bigs = std::max(4, scaled(60));
  for (int i = 0; i < n_bigs; ++i) {
    pools.bigs.push_back(
        add_input("field/q" + std::to_string(i) + ".dat",
                  clampi(static_cast<std::int64_t>(rng.lognormal(16.1, 0.6)),
                         4 * kMiB, 48 * kMiB)));
  }

  // ---- Job population --------------------------------------------------
  std::vector<JobSpec> jobs;
  // Arrivals follow a nonhomogeneous Poisson process with a diurnal rate
  // (thinning): more submissions mid-afternoon than at 4 am.
  const double amplitude = std::clamp(config.diurnal_amplitude, 0.0, 0.99);
  const auto draw_arrival = [&] {
    for (;;) {
      const auto t = static_cast<MicroSec>(rng.uniform01() *
                                           static_cast<double>(w.window));
      const double hour =
          static_cast<double>(t % (24 * kHour)) / static_cast<double>(kHour);
      constexpr double kPi = 3.14159265358979;
      const double rate =
          1.0 + amplitude * std::cos(2.0 * kPi * (hour - 15.0) / 24.0);
      if (rng.chance(rate / (1.0 + amplitude))) return t;
    }
  };

  const auto pick = [&](const std::vector<std::int32_t>& pool) {
    return pool[rng.uniform(pool.size())];
  };

  // Per-node input files are created on demand, one range per job.
  const auto add_range = [&](JobSpec& spec, const char* prefix, double mu,
                             double sigma, std::int64_t lo, std::int64_t hi) {
    for (std::int32_t i = 0; i < spec.nodes; ++i) {
      const std::int64_t bytes =
          clampi(static_cast<std::int64_t>(rng.lognormal(mu, sigma)), lo, hi);
      spec.input_files.push_back(add_input(
          std::string(prefix) + std::to_string(w.inputs.size()) + ".chk",
          bytes));
    }
  };
  // ~2 MB per-node restart dumps.
  const auto add_restart_range = [&](JobSpec& spec) {
    add_range(spec, "restart/r", 14.6, 0.6, 256 * kKiB, 8 * kMiB);
  };
  // Smaller per-node boundary-condition files, read once at startup.
  const auto add_bc_range = [&](JobSpec& spec) {
    add_range(spec, "bc/b", 12.6, 0.7, 32 * kKiB, 2 * kMiB);
  };

  const auto finish = [&](JobSpec spec) {
    spec.arrival = draw_arrival();
    spec.seed = rng.next();
    spec.mean_think = config.mean_think;
    spec.mean_phase_think = config.mean_phase_think;
    jobs.push_back(std::move(spec));
  };

  // Status checker: >800 runs of one single-node monitor, no CFS I/O.
  for (int i = 0; i < scaled(config.mix.status_check_jobs); ++i) {
    JobSpec s;
    s.nodes = 1;
    s.traced = false;
    s.archetype = Archetype::kStatusCheck;
    finish(std::move(s));
  }
  // Other system programs (ls, cp, ftp ...): untraced, host I/O only.
  for (int i = 0; i < scaled(config.mix.system_jobs); ++i) {
    JobSpec s;
    s.nodes = 1;
    s.traced = false;
    s.archetype = Archetype::kSystem;
    finish(std::move(s));
  }

  // Traced single-node user jobs (paper: at least 41).
  for (int i = 0; i < scaled(config.mix.traced_single_user_jobs); ++i) {
    JobSpec s;
    s.nodes = 1;
    s.traced = true;
    s.archetype = Archetype::kPostprocess;
    s.params.record_bytes = draw_record(rng, config.sizes);
    s.params.variant = rng.chance(0.3) ? 1 : 0;  // 1: also writes a summary
    s.input_files.push_back(pick(pools.mediums));
    finish(std::move(s));
  }

  // User jobs that were not relinked against the instrumented library:
  // they do real CFS I/O but emit no records.
  const auto make_user_job = [&](bool traced, bool multi) {
    JobSpec s;
    s.nodes = multi ? draw_multi_nodes(rng) : 1;
    s.traced = traced;

    const JobMixConfig& m = config.mix;
    const double weights[] = {m.w_broadcast_read,   m.w_cfd_solver,
                              m.w_slab_read,        m.w_checkpoint_write,
                              m.w_single_dump,      m.w_rw_update,
                              m.w_temp_file,        m.w_shared_pointer,
                              m.w_quad_tool};
    static constexpr Archetype kArch[] = {
        Archetype::kBroadcastRead,   Archetype::kCfdSolver,
        Archetype::kSlabRead,        Archetype::kCheckpointWrite,
        Archetype::kSingleDump,      Archetype::kRwUpdate,
        Archetype::kTempFile,        Archetype::kSharedPointer,
        Archetype::kQuadTool};
    s.archetype = kArch[rng.weighted(weights)];
    if (!multi && (s.archetype == Archetype::kSharedPointer ||
                   s.archetype == Archetype::kSlabRead)) {
      s.archetype = Archetype::kPostprocess;  // needs >1 node to make sense
    }
    auto& p = s.params;
    p.record_bytes = draw_record(rng, config.sizes);
    p.chunk_bytes = draw_chunk(rng, config.sizes);

    switch (s.archetype) {
      case Archetype::kBroadcastRead: {
        // Every node reads ONE shared input; usually in a single request
        // (variant 0), sometimes streamed in records (variant 1).  These
        // are Table 1's one-file jobs and Figure 7's fully byte-shared
        // read-only files.
        s.input_files.push_back(pick(pools.mediums));
        p.variant = rng.chance(0.3) ? 1 : 0;
        break;
      }
      case Archetype::kCfdSolver: {
        p.reads_restart = rng.chance(0.95);
        p.open_extra_untouched = rng.chance(config.untouched_open_fraction);
        // Fine-grained interleave: a burst must stay well under the 4 KB
        // block so each block is shared by several ranks (interprocess
        // spatial locality, §4.8).
        p.burst = static_cast<std::int32_t>(rng.uniform_range(2, 3));
        p.snapshots = static_cast<std::int32_t>(rng.uniform_range(3, 7));
        // Snapshot size: a cluster of runs dumps ~25 KB per node (Figure
        // 3's 25 KB bump, "may be due to just one or two applications");
        // the rest spread lognormally around that.
        const std::int64_t out_bytes =
            rng.chance(0.45)
                ? config.sizes.cluster_small
                : clampi(static_cast<std::int64_t>(rng.lognormal(10.2, 0.9)),
                         6 * kKiB, 384 * kKiB);
        // Grid/output records stay a few hundred bytes (Figure 4's
        // small-read mass) so interleave bursts stay sub-block.
        p.record_bytes = 8 * rng.uniform_range(32, 80);  // 256..640
        p.out_records = static_cast<std::int32_t>(std::max<std::int64_t>(
            (out_bytes - 512) / p.record_bytes, 4));
        // variant bits: 1 = r/w scratch file, 2 = selective restart read,
        // 4 = outputs tuned to the 4 KB file-system block (Figure 4's
        // small peak at 4 KB), 8 = restart streamed in large chunks,
        // 16 = decks scanned fgets-style in small lines.
        p.variant = 0;
        if (rng.chance(0.05)) p.variant |= 1;
        const double restart_style = rng.uniform01();
        if (restart_style < 0.34) {
          p.variant |= 2;
        } else if (restart_style < 0.44) {
          p.variant |= 8;
        }
        if (rng.chance(0.025)) p.variant |= 4;
        if (rng.chance(0.5)) p.variant |= 16;
        s.input_files.push_back(pick(pools.grids));  // interleaved grid
        const int extra = static_cast<int>(rng.uniform_range(2, 4));
        for (int i = 0; i < extra; ++i) {
          s.input_files.push_back(pick(pools.configs));  // broadcast decks
        }
        if (p.reads_restart) add_restart_range(s);
        p.reads_bc = rng.chance(0.7);
        if (p.reads_bc) add_bc_range(s);  // per-node boundary conditions
        break;
      }
      case Archetype::kSlabRead: {
        s.input_files.push_back(pick(pools.bigs));
        p.snapshots = 0;
        break;
      }
      case Archetype::kCheckpointWrite: {
        p.reads_restart = rng.chance(0.9);
        p.snapshots = static_cast<std::int32_t>(rng.uniform_range(2, 7));
        // Per-node checkpoint size: a node's share of the field data.
        p.file_bytes =
            clampi(static_cast<std::int64_t>(rng.lognormal(14.4, 0.7)),
                   128 * kKiB, 8 * kMiB);
        // Half the checkpointers write an exact multiple of the chunk
        // (one request size); the rest leave an odd tail (two sizes).
        if (rng.chance(0.5)) {
          p.file_bytes =
              std::max<std::int64_t>(p.file_bytes / p.chunk_bytes, 1) *
              p.chunk_bytes;
        }
        // variant bits: 1 = all nodes write disjoint slabs of ONE shared
        // file (Figure 7's unshared write-only population), 2 = nodes also
        // overwrite a common header region (the small byte-shared tail).
        p.variant = 0;
        if (rng.chance(0.3)) {
          p.variant |= 1;
          if (rng.chance(0.08)) p.variant |= 2;
        }
        p.open_extra_untouched =
            rng.chance(config.untouched_open_fraction * 0.6);
        if (rng.chance(0.6)) p.variant |= 16;  // fgets-style deck scanning
        s.input_files.push_back(pick(pools.configs));  // broadcast deck
        if (p.reads_restart) add_restart_range(s);
        break;
      }
      case Archetype::kSingleDump: {
        p.snapshots = static_cast<std::int32_t>(rng.uniform_range(1, 4));
        p.file_bytes = draw_file_size(rng, config.sizes);
        break;
      }
      case Archetype::kQuadTool: {
        // The popular small utility behind Table 1's 120 four-file jobs:
        // reads three shared inputs, writes one summary.  A fifth of the
        // runs skip one input (the three-file bucket).
        s.nodes = std::min<std::int32_t>(s.nodes, 4);
        const int n_inputs = rng.chance(0.2) ? 2 : 3;
        for (int i = 0; i < n_inputs; ++i) {
          s.input_files.push_back(rng.chance(0.6) ? pick(pools.configs)
                                                  : pick(pools.mediums));
        }
        p.variant = rng.chance(0.38) ? 1 : 0;  // 1: fgets-style record reads
        p.file_bytes = clampi(
            static_cast<std::int64_t>(rng.lognormal(10.2, 0.7)), 2 * kKiB,
            256 * kKiB);
        break;
      }
      case Archetype::kRwUpdate: {
        s.nodes = std::min<std::int32_t>(s.nodes, 32);
        s.input_files.push_back(pick(pools.mediums));
        p.phases = static_cast<std::int32_t>(rng.uniform_range(15, 50));
        p.variant = rng.chance(0.6) ? 1 : 0;  // 1: per-node partition files
        if (p.variant == 1) add_restart_range(s);
        break;
      }
      case Archetype::kTempFile: {
        // "Nearly all [temporary files] may have been from one application"
        // — a full-machine out-of-core attempt, run a handful of times
        // (also added explicitly below so small scales still see it).
        s.nodes = 128;
        p.out_records = static_cast<std::int32_t>(rng.uniform_range(20, 60));
        break;
      }
      case Archetype::kSharedPointer: {
        s.input_files.push_back(pick(pools.mediums));
        s.nodes = std::min(s.nodes, 8);
        p.variant = static_cast<std::uint8_t>(rng.uniform_range(1, 3));
        p.phases = static_cast<std::int32_t>(rng.uniform_range(8, 40));
        break;
      }
      case Archetype::kPostprocess: {
        s.input_files.push_back(pick(pools.mediums));
        p.variant = rng.chance(0.3) ? 1 : 0;
        break;
      }
      default:
        break;
    }
    finish(std::move(s));
  };

  for (int i = 0; i < scaled(config.mix.untraced_single_user_jobs); ++i) {
    make_user_job(false, false);
  }
  for (int i = 0; i < scaled(config.mix.untraced_multi_user_jobs); ++i) {
    make_user_job(false, true);
  }
  for (int i = 0; i < scaled(config.mix.traced_multi_user_jobs); ++i) {
    make_user_job(true, true);
  }

  // The temp-file application: one out-of-core experiment rerun a few
  // times, accounting for nearly all temporary files (paper §4.2).
  for (int i = 0; i < scaled(3); ++i) {
    JobSpec s;
    s.nodes = 128;
    s.traced = true;
    s.archetype = Archetype::kTempFile;
    s.params.record_bytes = draw_record(rng, config.sizes);
    s.params.out_records = static_cast<std::int32_t>(rng.uniform_range(20, 60));
    finish(std::move(s));
  }

  // The two one-off jobs the paper can see in its own data: the 1 MB-request
  // checkpointer behind Figure 4's data spike, and the job that opened 2217
  // files (17 snapshots on 128 nodes + inputs).
  if (config.scale >= 0.5) {
    JobSpec big;
    big.nodes = 64;
    big.traced = true;
    big.archetype = Archetype::kCheckpointWrite;
    big.params.chunk_bytes = 1 * kMiB;
    big.params.snapshots = 6;
    big.params.file_bytes = 8 * kMiB;
    big.input_files.push_back(pick(pools.configs));
    finish(std::move(big));

    JobSpec many;
    many.nodes = 128;
    many.traced = true;
    many.archetype = Archetype::kCfdSolver;
    many.params.record_bytes = draw_record(rng, config.sizes);
    many.params.chunk_bytes = draw_chunk(rng, config.sizes);
    many.params.burst = 4;
    many.params.snapshots = 17;
    many.params.out_records = 30;
    many.input_files.push_back(pick(pools.mediums));
    finish(std::move(many));
  }

  std::sort(jobs.begin(), jobs.end(),
            [](const JobSpec& a, const JobSpec& b) {
              return a.arrival < b.arrival;
            });
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].job = static_cast<cfs::JobId>(i);
  }
  w.jobs = std::move(jobs);
  return w;
}

// ---------------------------------------------------------------------
// Script compilation
// ---------------------------------------------------------------------
namespace {

class ScriptBuilder {
 public:
  ScriptBuilder(const JobSpec& spec, const GeneratedWorkload& w)
      : spec_(spec), w_(w), rng_(spec.seed) {
    scripts_.nodes.resize(static_cast<std::size_t>(spec.nodes));
    // Compute-rate imbalance: ranks of one SPMD job progress at different
    // speeds, so nodes spread out across a shared file as they read it.
    // This is what turns per-block sharing into the long-reuse-distance
    // interprocess locality the I/O-node cache (Figure 9) feeds on.
    rate_.reserve(scripts_.nodes.size());
    for (std::size_t n = 0; n < scripts_.nodes.size(); ++n) {
      rate_.push_back(0.5 + 2.0 * rng_.uniform01());
    }
  }

  JobScripts build() {
    switch (spec_.archetype) {
      case Archetype::kBroadcastRead: broadcast_read(); break;
      case Archetype::kCfdSolver: cfd_solver(); break;
      case Archetype::kSlabRead: slab_read(); break;
      case Archetype::kCheckpointWrite: checkpoint_write(); break;
      case Archetype::kSingleDump: single_dump(); break;
      case Archetype::kRwUpdate: rw_update(); break;
      case Archetype::kTempFile: temp_file(); break;
      case Archetype::kPostprocess: postprocess(); break;
      case Archetype::kQuadTool: quad_tool(); break;
      case Archetype::kSharedPointer: shared_pointer(); break;
      case Archetype::kStatusCheck:
      case Archetype::kSystem:
        no_cfs_job();
        break;
    }
    return std::move(scripts_);
  }

 private:
  // --- path helpers ----------------------------------------------------
  std::int32_t input_path(std::size_t k) {
    const auto idx = static_cast<std::size_t>(spec_.input_files.at(k));
    return intern(w_.inputs.at(idx).path);
  }
  std::int64_t input_bytes(std::size_t k) const {
    const auto idx = static_cast<std::size_t>(spec_.input_files.at(k));
    return w_.inputs.at(idx).bytes;
  }
  std::int32_t job_path(const std::string& name) {
    return intern("j" + std::to_string(spec_.job) + "/" + name);
  }
  std::int32_t intern(const std::string& path) {
    for (std::size_t i = 0; i < scripts_.paths.size(); ++i) {
      if (scripts_.paths[i] == path) return static_cast<std::int32_t>(i);
    }
    scripts_.paths.push_back(path);
    return static_cast<std::int32_t>(scripts_.paths.size() - 1);
  }

  // --- op helpers --------------------------------------------------------
  std::vector<Op>& ops(std::int32_t node) {
    return scripts_.nodes[static_cast<std::size_t>(node)].ops;
  }
  MicroSec think(std::int32_t n) {
    return static_cast<MicroSec>(
        rng_.exponential(static_cast<double>(spec_.mean_think)) *
        rate_[static_cast<std::size_t>(n)]);
  }
  MicroSec long_think() {
    return static_cast<MicroSec>(
        rng_.exponential(static_cast<double>(spec_.mean_phase_think)));
  }
  /// Startup compute before the node's first I/O.
  MicroSec startup_think() {
    return static_cast<MicroSec>(rng_.uniform_range(20, 115)) * kSecond;
  }
  void open(std::int32_t n, std::int32_t path, std::uint8_t flags,
            IoMode mode = IoMode::kIndependent, MicroSec t = -1) {
    Op op;
    op.kind = OpKind::kOpen;
    op.path = path;
    op.flags = flags;
    op.mode = mode;
    op.think = t < 0 ? think(n) : t;
    ops(n).push_back(op);
  }
  void read(std::int32_t n, std::int32_t path, std::int64_t bytes) {
    Op op;
    op.kind = OpKind::kRead;
    op.path = path;
    op.bytes = bytes;
    op.think = think(n);
    ops(n).push_back(op);
  }
  void write(std::int32_t n, std::int32_t path, std::int64_t bytes) {
    Op op;
    op.kind = OpKind::kWrite;
    op.path = path;
    op.bytes = bytes;
    op.think = think(n);
    ops(n).push_back(op);
  }
  void seek(std::int32_t n, std::int32_t path, std::int64_t offset,
            Whence whence) {
    Op op;
    op.kind = OpKind::kSeek;
    op.path = path;
    op.offset = offset;
    op.whence = whence;
    op.think = 0;
    ops(n).push_back(op);
  }
  void close(std::int32_t n, std::int32_t path) {
    Op op;
    op.kind = OpKind::kClose;
    op.path = path;
    op.think = think(n);
    ops(n).push_back(op);
  }
  void unlink(std::int32_t n, std::int32_t path) {
    Op op;
    op.kind = OpKind::kUnlink;
    op.path = path;
    op.think = think(n);
    ops(n).push_back(op);
  }
  void pause(std::int32_t n, MicroSec t) {
    Op op;
    op.kind = OpKind::kThink;
    op.think = t;
    ops(n).push_back(op);
  }
  /// Inserts a job-wide synchronization point on every node.  Scripts must
  /// emit the same number of barriers on every node.
  void barrier_all() {
    for (std::int32_t n = 0; n < spec_.nodes; ++n) {
      Op op;
      op.kind = OpKind::kBarrier;
      ops(n).push_back(op);
    }
  }

  // Streams a whole file consecutively in `rec`-sized requests.
  void stream_read(std::int32_t n, std::int32_t path, std::int64_t bytes,
                   std::int64_t rec) {
    std::int64_t left = bytes;
    while (left > 0) {
      const std::int64_t take = std::min(left, rec);
      read(n, path, take);
      left -= take;
    }
  }
  void stream_write(std::int32_t n, std::int32_t path, std::int64_t bytes,
                    std::int64_t rec) {
    std::int64_t left = bytes;
    while (left > 0) {
      const std::int64_t take = std::min(left, rec);
      write(n, path, take);
      left -= take;
    }
  }
  /// Reads a whole per-node restart file in one request — one access per
  /// node per file, Table 2's zero-interval population.
  void restart_read(std::int32_t n, std::size_t input_k) {
    const std::int32_t path = input_path(input_k);
    open(n, path, cfs::kRead);
    read(n, path, input_bytes(input_k));
    close(n, path);
  }
  /// Reads selected fields of a per-node file: bursts of records with a
  /// fixed skip between them.  Sequential but non-consecutive, exactly two
  /// interval sizes {0, skip} — the paper's interleaved-looking read-only
  /// signature on a single node.
  void selective_read(std::int32_t n, std::size_t input_k) {
    const std::int32_t path = input_path(input_k);
    const std::int64_t bytes = input_bytes(input_k);
    const std::int64_t rec = 8 * rng_.uniform_range(24, 100);  // 192-800 B
    const std::int32_t burst =
        static_cast<std::int32_t>(rng_.uniform_range(2, 4));
    const std::int64_t burst_bytes = burst * rec;
    // Skip several burst-widths between reads (reads a field subset).
    const std::int64_t skip = burst_bytes * rng_.uniform_range(2, 6);
    std::int64_t rounds = bytes / (burst_bytes + skip);
    rounds = std::clamp<std::int64_t>(rounds, 1, 250);
    open(n, path, cfs::kRead);
    for (std::int64_t j = 0; j < rounds; ++j) {
      for (std::int32_t b = 0; b < burst; ++b) read(n, path, rec);
      if (j + 1 < rounds) seek(n, path, skip, Whence::kCurrent);
    }
    close(n, path);
  }
  /// A per-node record-structured output file: one header + fixed records
  /// (Table 3's dominant two-request-size shape).
  void record_output(std::int32_t n, const std::string& name,
                     std::int32_t records, std::int64_t rec) {
    const std::int32_t path = job_path(name);
    open(n, path, cfs::kWrite | cfs::kCreate);
    write(n, path, 512);
    for (std::int32_t i = 0; i < records; ++i) write(n, path, rec);
    close(n, path);
  }

  // --- archetypes -------------------------------------------------------
  void broadcast_read();
  void cfd_solver();
  void slab_read();
  void checkpoint_write();
  void single_dump();
  void rw_update();
  void temp_file();
  void postprocess();
  void quad_tool();
  void shared_pointer();
  void no_cfs_job();

  const JobSpec& spec_;
  const GeneratedWorkload& w_;
  Rng rng_;
  JobScripts scripts_;
  std::vector<double> rate_;  // per-rank compute-speed multiplier
};

void ScriptBuilder::broadcast_read() {
  const auto P = spec_.nodes;
  const std::int32_t path = input_path(0);
  const std::int64_t bytes = input_bytes(0);
  const bool stream = spec_.params.variant == 1;
  const std::int64_t rec =
      std::clamp<std::int64_t>(spec_.params.record_bytes, 128, 768);
  for (std::int32_t n = 0; n < P; ++n) pause(n, startup_think());
  barrier_all();  // SPMD code: everyone reads the input at the same point
  for (std::int32_t n = 0; n < P; ++n) {
    open(n, path, cfs::kRead);
    if (stream) {
      stream_read(n, path, bytes, rec);
    } else {
      read(n, path, bytes);
    }
    close(n, path);
    pause(n, long_think());
  }
}

void ScriptBuilder::quad_tool() {
  // Table 1's four-file spike: a small utility that broadcast-reads its
  // inputs and has rank 0 dump one summary in a single write.
  const auto P = spec_.nodes;
  for (std::int32_t n = 0; n < P; ++n) pause(n, startup_think());
  barrier_all();
  for (std::size_t k = 0; k < spec_.input_files.size(); ++k) {
    const std::int32_t path = input_path(k);
    for (std::int32_t n = 0; n < P; ++n) {
      open(n, path, cfs::kRead);
      if (spec_.params.variant == 1) {
        // fgets-style record scanning — the small consecutive reads behind
        // Figure 8's high-hit-rate job cluster.
        stream_read(n, path, input_bytes(k),
                    std::clamp<std::int64_t>(spec_.params.record_bytes, 128,
                                             640));
      } else {
        read(n, path, input_bytes(k));
      }
      close(n, path);
    }
  }
  const std::int32_t out = job_path("summary.out");
  open(0, out, cfs::kWrite | cfs::kCreate);
  write(0, out, spec_.params.file_bytes);
  close(0, out);
}

void ScriptBuilder::cfd_solver() {
  const auto P = spec_.nodes;
  const auto& p = spec_.params;
  for (std::int32_t n = 0; n < P; ++n) pause(n, startup_think());
  barrier_all();  // collective reads start at the same code point
  std::size_t next_input = 0;
  const std::int32_t grid = input_path(next_input);
  const std::int64_t grid_bytes = input_bytes(next_input);
  ++next_input;

  // Broadcast the parameter decks: one whole-file read per node, or an
  // fgets-style line scan (variant bit 16) — text decks are parsed line by
  // line, which is where many of Figure 8's high-hit-rate jobs come from.
  const std::size_t bc_base =
      spec_.input_files.size() -
      (p.reads_bc ? static_cast<std::size_t>(P) : 0);
  const std::size_t shared_inputs =
      bc_base - (p.reads_restart ? static_cast<std::size_t>(P) : 0);
  for (std::size_t k = next_input; k < shared_inputs; ++k) {
    const std::int32_t path = input_path(k);
    // One line size per deck: every rank runs the same parser (Table 3).
    const std::int64_t line = 8 * rng_.uniform_range(16, 48);
    for (std::int32_t n = 0; n < P; ++n) {
      open(n, path, cfs::kRead);
      if ((p.variant & 16) != 0) {
        stream_read(n, path, input_bytes(k), line);
      } else {
        read(n, path, input_bytes(k));
      }
      close(n, path);
    }
  }

  // Per-node boundary conditions: one read per node per file (Table 2's
  // zero-interval population).
  if (p.reads_bc) {
    for (std::int32_t n = 0; n < P; ++n) {
      restart_read(n, bc_base + static_cast<std::size_t>(n));
    }
  }

  // Per-node restart load: a selective field-skipping read (variant bit 2),
  // a chunked consecutive stream (bit 8), or one whole-file read.
  if (p.reads_restart) {
    for (std::int32_t n = 0; n < P; ++n) {
      const std::size_t k = shared_inputs + static_cast<std::size_t>(n);
      if ((p.variant & 2) != 0) {
        selective_read(n, k);
      } else if ((p.variant & 8) != 0) {
        const std::int32_t path = input_path(k);
        open(n, path, cfs::kRead);
        stream_read(n, path, input_bytes(k), p.chunk_bytes);
        close(n, path);
      } else {
        restart_read(n, k);
      }
    }
  }

  // The opened-but-never-touched flag/lock file.
  if (p.open_extra_untouched) {
    for (std::int32_t n = 0; n < P; ++n) {
      const std::int32_t path = job_path("lock" + std::to_string(n));
      open(n, path, cfs::kWrite | cfs::kCreate);
      close(n, path);
    }
  }

  // Each timestep phase interleave-reads the shared grid and then dumps a
  // per-node snapshot.  The grid read: node n takes bursts n, n+P, ...
  // Per node: offsets strictly increase (sequential), bursts are
  // consecutive internally, and exactly two interval sizes occur
  // {0, (P-1)*burst*rec} — the paper's Table 2/Figure 6 signature.  The
  // same 4 KB grid block is touched by several nodes whose progress drifts
  // apart (rate_), producing the interprocess spatial locality that drives
  // the I/O-node cache (Figure 9).
  const std::int64_t rec = p.record_bytes;
  const std::int64_t burst_bytes = static_cast<std::int64_t>(p.burst) * rec;
  const std::int64_t stride = static_cast<std::int64_t>(P) * burst_bytes;
  // Small jobs only sweep a prefix of a big mesh each phase.
  const std::int64_t rounds =
      std::clamp<std::int64_t>(grid_bytes / stride, 1, 400);
  // Variant bit 4 marks the users who tuned their output record size to
  // the 4 KB file-system block (Figure 4's small peak at 4 KB).
  const std::int64_t out_rec = (p.variant & 4) ? 4096 : rec;
  for (std::int32_t snap = 0; snap < p.snapshots; ++snap) {
    for (std::int32_t n = 0; n < P; ++n) {
      open(n, grid, cfs::kRead);
      seek(n, grid, static_cast<std::int64_t>(n) * burst_bytes, Whence::kSet);
      for (std::int64_t j = 0; j < rounds; ++j) {
        for (std::int32_t b = 0; b < p.burst; ++b) read(n, grid, rec);
        if (j + 1 < rounds) {
          seek(n, grid, (static_cast<std::int64_t>(P) - 1) * burst_bytes,
               Whence::kCurrent);
        }
      }
      close(n, grid);
    }
    for (std::int32_t n = 0; n < P; ++n) {
      pause(n, long_think());
      record_output(n,
                    "s" + std::to_string(snap) + "_n" + std::to_string(n) +
                        ".q",
                    p.out_records, out_rec);
    }
  }

  // Optional read/write scratch file, updated at random record offsets —
  // the non-sequential read-write population of Figure 5.
  if ((p.variant & 1) != 0) {
    for (std::int32_t n = 0; n < P; ++n) {
      const std::int32_t path = job_path("scratch" + std::to_string(n));
      open(n, path, cfs::kRead | cfs::kWrite | cfs::kCreate);
      stream_write(n, path, 64 * rec, rec);
      const std::int64_t recs = 64;
      for (int u = 0; u < 30; ++u) {
        const std::int64_t at = rng_.uniform_range(0, recs - 1) * rec;
        seek(n, path, at, Whence::kSet);
        read(n, path, rec);
        seek(n, path, -rec, Whence::kCurrent);
        write(n, path, rec);
      }
      close(n, path);
    }
  }
}

void ScriptBuilder::slab_read() {
  const auto P = spec_.nodes;
  const std::int32_t path = input_path(0);
  const std::int64_t bytes = input_bytes(0);
  const std::int64_t slab = bytes / P;
  for (std::int32_t n = 0; n < P; ++n) {
    pause(n, startup_think());
    open(n, path, cfs::kRead);
    seek(n, path, static_cast<std::int64_t>(n) * slab, Whence::kSet);
    read(n, path, slab);
    close(n, path);
  }
  if (spec_.params.snapshots > 0) {
    for (std::int32_t n = 0; n < P; ++n) {
      record_output(n, "part" + std::to_string(n) + ".out",
                    spec_.params.out_records, spec_.params.record_bytes);
    }
  }
}

void ScriptBuilder::checkpoint_write() {
  const auto P = spec_.nodes;
  const auto& p = spec_.params;
  for (std::int32_t n = 0; n < P; ++n) pause(n, startup_think());
  barrier_all();
  // Broadcast deck (line-scanned by most jobs, variant bit 16).
  const std::int32_t deck = input_path(0);
  const std::int64_t line = 8 * rng_.uniform_range(16, 48);
  for (std::int32_t n = 0; n < P; ++n) {
    open(n, deck, cfs::kRead);
    if ((p.variant & 16) != 0) {
      stream_read(n, deck, input_bytes(0), line);
    } else {
      read(n, deck, input_bytes(0));
    }
    close(n, deck);
  }
  if (p.reads_restart) {
    for (std::int32_t n = 0; n < P; ++n) {
      restart_read(n, 1 + static_cast<std::size_t>(n));
    }
  }
  if (p.open_extra_untouched) {
    for (std::int32_t n = 0; n < P; ++n) {
      const std::int32_t path = job_path("stamp" + std::to_string(n));
      open(n, path, cfs::kWrite | cfs::kCreate);
      close(n, path);
    }
  }
  const bool shared_file = (p.variant & 1) != 0;
  const bool header_overlap = (p.variant & 2) != 0;
  for (std::int32_t snap = 0; snap < p.snapshots; ++snap) {
    if (shared_file) {
      // All nodes write disjoint slabs of one shared checkpoint: a
      // write-only file concurrently open on every node with (usually) no
      // byte shared (Figure 7's write-only curve).  With header_overlap
      // every node also rewrites a common 512-byte header.
      const std::int32_t path = job_path("C" + std::to_string(snap) + ".chk");
      for (std::int32_t n = 0; n < P; ++n) pause(n, long_think());
      barrier_all();  // checkpoints are collective
      for (std::int32_t n = 0; n < P; ++n) {
        open(n, path, cfs::kWrite | cfs::kCreate);
        if (header_overlap) {
          write(n, path, 512);
          seek(n, path, 512 + static_cast<std::int64_t>(n) * p.file_bytes,
               Whence::kSet);
        } else {
          seek(n, path, static_cast<std::int64_t>(n) * p.file_bytes,
               Whence::kSet);
        }
        stream_write(n, path, p.file_bytes, p.chunk_bytes);
        close(n, path);
      }
    } else {
      for (std::int32_t n = 0; n < P; ++n) {
        pause(n, long_think());
        const std::int32_t path = job_path(
            "c" + std::to_string(snap) + "_n" + std::to_string(n) + ".chk");
        open(n, path, cfs::kWrite | cfs::kCreate);
        // Large chunks plus one odd-size tail: 2 distinct request sizes.
        stream_write(n, path, p.file_bytes, p.chunk_bytes);
        close(n, path);
      }
    }
  }
}

void ScriptBuilder::single_dump() {
  const auto P = spec_.nodes;
  for (std::int32_t n = 0; n < P; ++n) pause(n, startup_think());
  for (std::int32_t snap = 0; snap < spec_.params.snapshots; ++snap) {
    for (std::int32_t n = 0; n < P; ++n) {
      if (snap > 0) pause(n, long_think());
      const std::int32_t path = job_path(
          "d" + std::to_string(snap) + "_n" + std::to_string(n) + ".out");
      open(n, path, cfs::kWrite | cfs::kCreate);
      write(n, path, spec_.params.file_bytes);  // the whole result at once
      close(n, path);
    }
  }
}

void ScriptBuilder::rw_update() {
  const auto P = spec_.nodes;
  const auto& p = spec_.params;
  // The table's record size tracks the file: a few hundred records total,
  // so the whole table gets touched by somebody (Figure 7's read-write
  // byte sharing) while records still straddle blocks (block sharing).
  const std::int64_t rec = std::clamp<std::int64_t>(
      8 * (input_bytes(0) / 192 / 8), 256, 4096);
  if (p.variant == 0) {
    // All nodes update random records of one shared table: heavy byte- and
    // block-sharing in a read-write file (Figure 7's read-write curves).
    const std::int32_t path = input_path(0);
    const std::int64_t recs = std::max<std::int64_t>(input_bytes(0) / rec, 1);
    for (std::int32_t n = 0; n < P; ++n) pause(n, startup_think());
    barrier_all();
    for (std::int32_t n = 0; n < P; ++n) {
      open(n, path, cfs::kRead | cfs::kWrite);
      for (std::int32_t u = 0; u < p.phases; ++u) {
        const std::int64_t at = rng_.uniform_range(0, recs - 1) * rec;
        seek(n, path, at, Whence::kSet);
        read(n, path, rec);
        seek(n, path, -rec, Whence::kCurrent);
        write(n, path, rec);
      }
      close(n, path);
    }
  } else {
    // Per-node partition files updated in place.
    for (std::int32_t n = 0; n < P; ++n) {
      const std::size_t k = 1 + static_cast<std::size_t>(n);
      const std::int32_t path = input_path(k);
      const std::int64_t recs =
          std::max<std::int64_t>(input_bytes(k) / rec, 1);
      open(n, path, cfs::kRead | cfs::kWrite);
      for (std::int32_t u = 0; u < p.phases; ++u) {
        const std::int64_t at = rng_.uniform_range(0, recs - 1) * rec;
        seek(n, path, at, Whence::kSet);
        read(n, path, rec);
        seek(n, path, -rec, Whence::kCurrent);
        write(n, path, rec);
      }
      close(n, path);
    }
  }
}

void ScriptBuilder::temp_file() {
  const auto P = spec_.nodes;
  const std::int64_t rec = spec_.params.record_bytes;
  const std::int32_t recs = spec_.params.out_records;
  for (std::int32_t n = 0; n < P; ++n) {
    const std::int32_t path = job_path("tmp" + std::to_string(n));
    open(n, path, cfs::kRead | cfs::kWrite | cfs::kCreate);
    for (std::int32_t i = 0; i < recs; ++i) write(n, path, rec);
    seek(n, path, 0, Whence::kSet);
    for (std::int32_t i = 0; i < recs; ++i) read(n, path, rec);
    close(n, path);
    unlink(n, path);
  }
}

void ScriptBuilder::postprocess() {
  pause(0, startup_think());
  const std::int32_t path = input_path(0);
  const std::int64_t rec =
      std::clamp<std::int64_t>(spec_.params.record_bytes, 128, 768);
  open(0, path, cfs::kRead);
  stream_read(0, path, input_bytes(0), rec);
  close(0, path);
  if (spec_.params.variant == 1) {
    const std::int32_t out = job_path("summary.out");
    open(0, out, cfs::kWrite | cfs::kCreate);
    write(0, out, rng_.uniform_range(2, 20) * 1024);
    close(0, out);
  }
}

void ScriptBuilder::shared_pointer() {
  const auto P = spec_.nodes;
  const auto& p = spec_.params;
  const std::int32_t path = input_path(0);
  const auto mode = static_cast<IoMode>(p.variant);  // 1, 2 or 3
  const std::int64_t rec = p.record_bytes;
  for (std::int32_t n = 0; n < P; ++n) open(n, path, cfs::kRead, mode);
  // Mode 2's round-robin rotation only makes sense once every node holds
  // the file open, so the app synchronizes after the collective open.
  barrier_all();
  // Each node issues one read per round; the shared pointer deals records
  // out in arrival (mode 1) or round-robin (modes 2-3) order.
  for (std::int32_t round = 0; round < p.phases; ++round) {
    for (std::int32_t n = 0; n < P; ++n) read(n, path, rec);
  }
  for (std::int32_t n = 0; n < P; ++n) close(n, path);
}

void ScriptBuilder::no_cfs_job() {
  // System programs and the status checker use host I/O only; they occupy
  // the machine (Figure 1) without touching CFS.  Runtimes of a minute or
  // two, matching quick interactive tools over the 10 Mbit Ethernet.
  const int phases = static_cast<int>(rng_.uniform_range(2, 6));
  for (std::int32_t n = 0; n < spec_.nodes; ++n) {
    for (int i = 0; i < phases; ++i) {
      pause(n, static_cast<MicroSec>(
                   rng_.exponential(static_cast<double>(25 * kSecond))));
    }
  }
}

}  // namespace

JobScripts build_scripts(const JobSpec& spec,
                         const GeneratedWorkload& workload) {
  util::check(spec.nodes >= 1, "job with no nodes");
  ScriptBuilder builder(spec, workload);
  return builder.build();
}

}  // namespace charisma::workload
