#include "util/thread_pool.hpp"

#include <algorithm>

namespace charisma::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const MutexLock lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  const MutexLock lock(mutex_);
  // Explicit wait loop (not the predicate overload): the thread safety
  // analysis can then see every guarded read happens with mutex_ held.
  while (!queue_.empty() || in_flight_ != 0) idle_cv_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      const MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();  // exceptions are captured into the packaged_task's future
    {
      const MutexLock lock(mutex_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = pool.thread_count();
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    futures.push_back(pool.submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  // Drain every chunk before rethrowing: bailing out on the first throw
  // would return (and destroy the caller's `body`) while later chunks are
  // still running against it.
  std::exception_ptr first_failure;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_failure) first_failure = std::current_exception();
    }
  }
  if (first_failure) std::rethrow_exception(first_failure);
}

}  // namespace charisma::util
