// One analyzer per experiment (DESIGN.md §3).  Every analyzer consumes the
// SessionStore / sorted trace only — never the workload configuration — so
// each figure is a measurement, not an echo of the generator.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/session.hpp"
#include "util/histogram.hpp"

namespace charisma::analysis {

// ---- Figure 1: concurrent jobs ----------------------------------------
struct JobConcurrencyResult {
  /// time_fraction[k] = fraction of the traced period with exactly k jobs
  /// running; the last bin aggregates >= time_fraction.size()-1.
  std::vector<double> time_fraction;
  double idle_fraction = 0.0;
  double multiprogrammed_fraction = 0.0;  // > 1 job
  int max_concurrent = 0;
  util::MicroSec observed_period = 0;

  [[nodiscard]] std::string render() const;
};
[[nodiscard]] JobConcurrencyResult analyze_job_concurrency(
    const SessionStore& store);

// ---- Figure 2: nodes per job -------------------------------------------
struct NodeCountResult {
  std::map<std::int32_t, std::int64_t> jobs_by_nodes;
  std::map<std::int32_t, double> node_seconds_by_nodes;
  std::int64_t total_jobs = 0;
  double single_node_job_fraction = 0.0;
  /// Fraction of consumed node-seconds from jobs of >= 32 nodes.
  double large_job_usage_share = 0.0;

  [[nodiscard]] std::string render() const;
};
[[nodiscard]] NodeCountResult analyze_node_counts(const SessionStore& store);

// ---- Figure 3: file sizes at close --------------------------------------
struct FileSizeResult {
  util::Cdf cdf;  // over bytes at close
  std::int64_t files = 0;
  double fraction_between_10k_1m = 0.0;
  std::int64_t median = 0;

  [[nodiscard]] std::string render() const;
};
[[nodiscard]] FileSizeResult analyze_file_sizes(const SessionStore& store);

// ---- Figure 4: request sizes --------------------------------------------
struct RequestSizeResult {
  util::Cdf reads_by_count;
  util::Cdf reads_by_bytes;
  util::Cdf writes_by_count;
  util::Cdf writes_by_bytes;
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  double small_read_fraction = 0.0;        // requests < 4000 B
  double small_read_data_fraction = 0.0;   // bytes moved by those
  double small_write_fraction = 0.0;
  double small_write_data_fraction = 0.0;

  [[nodiscard]] std::string render() const;
};
[[nodiscard]] RequestSizeResult analyze_request_sizes(
    const trace::SortedTrace& trace);

/// Streaming form of analyze_request_sizes: push records, then finish().
/// The materialized overload above is implemented on top of this, so both
/// paths share one code path and one result.
class RequestSizeAccumulator final : public trace::RecordSink {
 public:
  void on_record(const Record& r) override;
  /// Computes the CDFs and small-request fractions.  Call once.
  [[nodiscard]] RequestSizeResult finish();

 private:
  RequestSizeResult out_;
  util::Histogram read_count_, read_bytes_, write_count_, write_bytes_;
};

// ---- Figures 5/6: sequentiality ------------------------------------------
struct SequentialityResult {
  struct PerClass {
    std::int64_t files = 0;             // multi-request sessions
    util::Cdf sequential_cdf;           // % sequential per file
    util::Cdf consecutive_cdf;          // % consecutive per file
    double fully_sequential = 0.0;      // fraction of files at 100%
    double fully_consecutive = 0.0;
    double zero_sequential = 0.0;
    double zero_consecutive = 0.0;
  };
  PerClass read_only, write_only, read_write;

  [[nodiscard]] std::string render() const;
};
[[nodiscard]] SequentialityResult analyze_sequentiality(
    const SessionStore& store);

// ---- Figure 7: sharing ----------------------------------------------------
struct SharingResult {
  struct PerClass {
    std::int64_t files = 0;  // concurrently opened by > 1 node
    util::Cdf byte_shared_cdf;
    util::Cdf block_shared_cdf;
    double fully_byte_shared = 0.0;
    double no_bytes_shared = 0.0;
    double fully_block_shared = 0.0;
  };
  PerClass read_only, write_only, read_write;

  [[nodiscard]] std::string render() const;
};
[[nodiscard]] SharingResult analyze_sharing(const SessionStore& store,
                                            std::int64_t block_size);

// ---- Table 1: files per job -----------------------------------------------
struct FilesPerJobResult {
  std::array<std::int64_t, 5> buckets{};  // 1,2,3,4,5+
  std::int64_t traced_jobs_with_files = 0;
  std::int64_t max_files_one_job = 0;

  [[nodiscard]] std::string render() const;
};
[[nodiscard]] FilesPerJobResult analyze_files_per_job(
    const SessionStore& store);

// ---- Table 2: interval regularity ------------------------------------------
struct IntervalResult {
  std::array<std::int64_t, 5> buckets{};  // 0,1,2,3,4+ distinct intervals
  std::int64_t total_files = 0;
  double one_interval_consecutive_share = 0.0;  // of 1-interval files

  [[nodiscard]] std::string render() const;
};
[[nodiscard]] IntervalResult analyze_intervals(const SessionStore& store);

// ---- Table 3: request-size regularity ---------------------------------------
struct RequestRegularityResult {
  std::array<std::int64_t, 5> buckets{};  // 0,1,2,3,4+ distinct sizes
  std::int64_t total_files = 0;
  double one_or_two_sizes_share = 0.0;

  [[nodiscard]] std::string render() const;
};
[[nodiscard]] RequestRegularityResult analyze_request_regularity(
    const SessionStore& store);

// ---- §4.2: file population ----------------------------------------------
struct FilePopulationResult {
  std::int64_t sessions = 0;
  std::int64_t read_only = 0;
  std::int64_t write_only = 0;
  std::int64_t read_write = 0;
  std::int64_t untouched = 0;
  std::int64_t temporary = 0;
  double temporary_fraction = 0.0;
  double mean_bytes_read_per_read_file = 0.0;
  double mean_bytes_written_per_write_file = 0.0;

  [[nodiscard]] std::string render() const;
};
[[nodiscard]] FilePopulationResult analyze_file_population(
    const SessionStore& store);

// ---- §4.6: I/O mode usage --------------------------------------------------
struct ModeUsageResult {
  std::array<std::int64_t, 4> sessions_by_mode{};
  double mode0_fraction = 0.0;

  [[nodiscard]] std::string render() const;
};
[[nodiscard]] ModeUsageResult analyze_mode_usage(const SessionStore& store);

}  // namespace charisma::analysis
