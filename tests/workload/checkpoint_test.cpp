// Property tests for the Daly-interval checkpoint-restart source: the
// interval formula's shape, the plan's byte accounting, determinism in
// (seed, config), and NaN-freedom at degenerate configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "workload/checkpoint.hpp"
#include "workload/source.hpp"

namespace charisma::workload {
namespace {

TEST(DalyInterval, MonotoneInMtti) {
  const double dump = 30.0;  // seconds to write one image
  double previous = 0.0;
  for (double mtti_hours = 0.5; mtti_hours <= 64.0; mtti_hours *= 2.0) {
    const double tau = daly_interval_seconds(dump, mtti_hours * 3600.0);
    EXPECT_TRUE(std::isfinite(tau));
    EXPECT_GE(tau, previous) << "mtti " << mtti_hours << "h";
    previous = tau;
  }
  EXPECT_GT(previous, 0.0);
}

TEST(DalyInterval, DegeneratesToMttiForSlowDumps) {
  // dump >= 2*MTTI: checkpointing costs more than it saves; the estimate
  // collapses to the MTTI itself.
  EXPECT_DOUBLE_EQ(daly_interval_seconds(7200.0, 3600.0), 3600.0);
  EXPECT_DOUBLE_EQ(daly_interval_seconds(1e9, 60.0), 60.0);
}

TEST(DalyInterval, ZeroDumpCostMeansZeroInterval) {
  // Free checkpoints: tau = sqrt(0) * (...) - 0 = 0, and nothing NaNs.
  const double tau = daly_interval_seconds(0.0, 3600.0);
  EXPECT_TRUE(std::isfinite(tau));
  EXPECT_DOUBLE_EQ(tau, 0.0);
}

TEST(CheckpointPlan, RankBytesSumToImageBytes) {
  CheckpointConfig config;
  config.nodes = 7;  // odd, so the division has a remainder for rank 0
  const CheckpointPlan plan = plan_checkpoints(config, 1.0);
  std::int64_t total = 0;
  for (std::int32_t rank = 0; rank < plan.nodes; ++rank) {
    total += plan.bytes_per_rank(rank);
  }
  EXPECT_EQ(total, plan.image_bytes);
  EXPECT_GE(plan.bytes_per_rank(0), plan.bytes_per_rank(1));
  EXPECT_EQ(plan.bytes_per_rank(-1), 0);
  EXPECT_EQ(plan.bytes_per_rank(plan.nodes), 0);
}

TEST(CheckpointPlan, ScriptTotalBytesAreImageTimesDumps) {
  WorkloadConfig config;
  config.scale = 1.0;
  config.checkpoint.nodes = 5;
  config.checkpoint.runtime_hours = 0.1;
  config.checkpoint.mtti_hours = 0.5;
  config.checkpoint.size_tib = 0.0002;
  const CheckpointPlan plan = plan_checkpoints(config.checkpoint, config.scale);
  ASSERT_GT(plan.dumps, 0);

  const GeneratedWorkload w = build_checkpoint_workload(config);
  ASSERT_EQ(w.jobs.size(), 1u);
  const JobScripts scripts =
      build_checkpoint_scripts(w.jobs[0], config.checkpoint, config.scale);
  std::int64_t written = 0;
  std::int64_t opens = 0;
  for (const NodeScript& node : scripts.nodes) {
    for (const Op& op : node.ops) {
      if (op.kind == OpKind::kWrite) {
        written += op.bytes;
        EXPECT_LE(op.bytes, config.checkpoint.chunk_bytes);
        EXPECT_GT(op.bytes, 0);
      } else if (op.kind == OpKind::kOpen) {
        ++opens;
      }
    }
  }
  EXPECT_EQ(written, plan.image_bytes * plan.dumps);
  EXPECT_EQ(opens, static_cast<std::int64_t>(plan.nodes) * plan.dumps);
  // One distinct dump file per (rank, dump): nothing is overwritten, so the
  // aggregate defensive-I/O volume really lands on the file system.
  EXPECT_EQ(scripts.paths.size(),
            static_cast<std::size_t>(plan.nodes) *
                static_cast<std::size_t>(plan.dumps));
}

TEST(CheckpointSource, DeterministicInSeedAndConfig) {
  WorkloadConfig config;
  config.seed = 1234;
  config.scale = 1.0;
  config.checkpoint.runtime_hours = 0.02;
  config.checkpoint.mtti_hours = 0.25;
  const GeneratedWorkload a = build_checkpoint_workload(config);
  const GeneratedWorkload b = build_checkpoint_workload(config);
  ASSERT_EQ(a.jobs.size(), 1u);
  EXPECT_EQ(a.jobs[0].seed, b.jobs[0].seed);
  EXPECT_EQ(a.window, b.window);

  const JobScripts sa =
      build_checkpoint_scripts(a.jobs[0], config.checkpoint, config.scale);
  const JobScripts sb =
      build_checkpoint_scripts(b.jobs[0], config.checkpoint, config.scale);
  ASSERT_EQ(sa.nodes.size(), sb.nodes.size());
  for (std::size_t rank = 0; rank < sa.nodes.size(); ++rank) {
    const auto& oa = sa.nodes[rank].ops;
    const auto& ob = sb.nodes[rank].ops;
    ASSERT_EQ(oa.size(), ob.size()) << "rank " << rank;
    for (std::size_t i = 0; i < oa.size(); ++i) {
      EXPECT_EQ(oa[i].kind, ob[i].kind);
      EXPECT_EQ(oa[i].think, ob[i].think);
      EXPECT_EQ(oa[i].bytes, ob[i].bytes);
      EXPECT_EQ(oa[i].path, ob[i].path);
    }
  }

  // A different workload seed shifts the job seed (and with it the rank
  // start-up skews).
  WorkloadConfig other = config;
  other.seed = 4321;
  const GeneratedWorkload c = build_checkpoint_workload(other);
  EXPECT_NE(a.jobs[0].seed, c.jobs[0].seed);
}

TEST(CheckpointSource, ZeroLengthWindowIsNaNFree) {
  // scale 0 (or runtime 0) must degrade to an empty-but-valid workload:
  // zero dumps, zero window, finite plan, empty scripts — never NaN, never
  // a throw.
  for (const bool zero_scale : {true, false}) {
    WorkloadConfig config;
    config.scale = zero_scale ? 0.0 : 1.0;
    if (!zero_scale) config.checkpoint.runtime_hours = 0.0;
    const CheckpointPlan plan =
        plan_checkpoints(config.checkpoint, config.scale);
    EXPECT_TRUE(std::isfinite(plan.dump_seconds));
    EXPECT_TRUE(std::isfinite(plan.interval_seconds));
    EXPECT_EQ(plan.dumps, 0);

    const GeneratedWorkload w = build_checkpoint_workload(config);
    EXPECT_EQ(w.window, 0);
    ASSERT_EQ(w.jobs.size(), 1u);
    const JobScripts scripts =
        build_checkpoint_scripts(w.jobs[0], config.checkpoint, config.scale);
    for (const NodeScript& node : scripts.nodes) {
      EXPECT_TRUE(node.ops.empty());
    }
    EXPECT_TRUE(scripts.paths.empty());
  }
}

TEST(CheckpointSource, PullsThroughTheSourceSeam) {
  WorkloadConfig config;
  config.scale = 1.0;
  config.checkpoint.nodes = 3;
  config.checkpoint.runtime_hours = 0.01;
  config.checkpoint.mtti_hours = 0.1;
  config.checkpoint.size_tib = 0.0001;
  SourceSpec spec;
  spec.method = "checkpoint";
  const auto source = load_source(spec, config);
  ASSERT_EQ(source->workload().jobs.size(), 1u);
  const CheckpointPlan plan = plan_checkpoints(config.checkpoint, config.scale);
  ASSERT_GT(plan.dumps, 0);

  (void)source->start_job(0);
  std::int64_t written = 0;
  for (std::int32_t rank = 0; rank < 3; ++rank) {
    for (Op op = source->next(0, rank); op.kind != OpKind::kEnd;
         op = source->next(0, rank)) {
      if (op.kind == OpKind::kWrite) written += op.bytes;
    }
  }
  source->end_job(0);
  EXPECT_EQ(written, plan.image_bytes * plan.dumps);
}

}  // namespace
}  // namespace charisma::workload
