#include "cfs/runtime.hpp"

#include "util/check.hpp"

namespace charisma::cfs {

Runtime::Runtime(ipsc::Machine& machine, RuntimeParams params)
    : machine_(&machine),
      fs_([&] {
        params.fs.io_nodes = machine.io_nodes();
        params.fs.disk_capacity = machine.config().disk.capacity_bytes;
        return params.fs;
      }()) {
  io_nodes_.reserve(static_cast<std::size_t>(machine.io_nodes()));
  for (int i = 0; i < machine.io_nodes(); ++i) {
    io_nodes_.push_back(
        std::make_unique<IoNode>(i, machine.disk(i), params.io));
  }
}

IoNode& Runtime::io_node(int i) {
  util::check(i >= 0 && static_cast<std::size_t>(i) < io_nodes_.size(),
              "I/O node out of range");
  return *io_nodes_[static_cast<std::size_t>(i)];
}

}  // namespace charisma::cfs
