#include "ipsc/machine.hpp"

#include "util/check.hpp"

namespace charisma::ipsc {

MachineConfig MachineConfig::nas_ames() { return MachineConfig{}; }

MachineConfig MachineConfig::tiny() {
  MachineConfig c;
  c.compute_nodes = 8;
  c.io_nodes = 2;
  return c;
}

Machine::Machine(sim::Engine& engine, const MachineConfig& config,
                 util::Rng& rng)
    : engine_(&engine),
      config_(config),
      cube_(net::Hypercube::dimension_for(config.compute_nodes)),
      messages_(cube_, config.net) {
  util::check(config.compute_nodes >= 1, "need at least one compute node");
  util::check(config.io_nodes >= 1, "need at least one I/O node");
  util::check(config.io_nodes <= config.compute_nodes,
              "more I/O nodes than compute-node taps");
  clocks_.reserve(static_cast<std::size_t>(config.compute_nodes));
  for (NodeId n = 0; n < config.compute_nodes; ++n) {
    clocks_.push_back(sim::DriftingClock::random(
        rng, engine.now(), config.max_clock_drift_ppm,
        config.max_clock_offset));
  }
  disks_.reserve(static_cast<std::size_t>(config.io_nodes));
  for (int d = 0; d < config.io_nodes; ++d) {
    disks_.emplace_back(config.disk);
  }
  // Spread taps evenly over the cube; computed once — compute_to_io runs
  // for every request and reply message, so it must not re-derive this.
  const NodeId stride = config.compute_nodes / config.io_nodes;
  io_taps_.reserve(static_cast<std::size_t>(config.io_nodes));
  for (int d = 0; d < config.io_nodes; ++d) {
    io_taps_.push_back(static_cast<NodeId>(d) * (stride > 0 ? stride : 1));
  }
}

const sim::DriftingClock& Machine::clock(NodeId node) const {
  util::check(node >= 0 && node < config_.compute_nodes,
              "compute node out of range");
  return clocks_[static_cast<std::size_t>(node)];
}

disk::Disk& Machine::disk(int io_node) {
  util::check(io_node >= 0 && io_node < config_.io_nodes,
              "I/O node out of range");
  return disks_[static_cast<std::size_t>(io_node)];
}

NodeId Machine::io_tap(int io_node) const {
  util::check(io_node >= 0 && io_node < config_.io_nodes,
              "I/O node out of range");
  return io_taps_[static_cast<std::size_t>(io_node)];
}

MicroSec Machine::compute_to_compute(NodeId from, NodeId to,
                                     std::int64_t bytes) const {
  return messages_.transfer_time(from, to, bytes);
}

MicroSec Machine::compute_to_io(NodeId from, int io_node,
                                std::int64_t bytes) const {
  const NodeId tap = io_tap(io_node);
  return messages_.transfer_time_hops(cube_.hops(from, tap) + 1, bytes);
}

MicroSec Machine::compute_to_service(NodeId from, std::int64_t bytes) const {
  return messages_.transfer_time_hops(cube_.hops(from, service_tap()) + 1,
                                      bytes);
}

}  // namespace charisma::ipsc
