// The crash-salvaging trace reader.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>

#include "trace/postprocess.hpp"
#include "trace/trace_file.hpp"
#include "util/rng.hpp"

namespace charisma::trace {
namespace {

class TolerantReaderTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  // Per-test name: ctest runs every test as its own concurrent process,
  // so a shared fixed path races across cases.
  std::string path_ =
      ::testing::TempDir() + "charisma_tolerant_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".chtr";

  static TraceFile sample(int blocks) {
    TraceFile t;
    t.header.compute_nodes = 4;
    t.header.io_nodes = 2;
    t.header.label = "crashy";
    for (int b = 0; b < blocks; ++b) {
      TraceBlock block;
      block.node = b % 4;
      block.sent_local = b * 1000;
      block.recv_global = b * 1000 + 50;
      for (int i = 0; i < 8; ++i) {
        Record r;
        r.kind = EventKind::kRead;
        r.node = block.node;
        r.timestamp = b * 1000 + i;
        r.bytes = 100;
        block.records.push_back(r);
      }
      t.blocks.push_back(std::move(block));
    }
    return t;
  }

  void truncate_to(std::size_t bytes) {
    std::ifstream in(path_, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(std::min(bytes, contents.size())));
  }

  std::size_t file_size() {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    return static_cast<std::size_t>(in.tellg());
  }
};

TEST_F(TolerantReaderTest, IntactFileReadsFully) {
  sample(10).write(path_);
  bool truncated = true;
  const auto t = TraceFile::read_tolerant(path_, &truncated);
  EXPECT_FALSE(truncated);
  EXPECT_EQ(t.blocks.size(), 10u);
  EXPECT_EQ(t.record_count(), 80u);
}

TEST_F(TolerantReaderTest, SalvagesCompleteBlocksFromCrashedTrace) {
  sample(10).write(path_);
  const std::size_t full = file_size();
  truncate_to(full - 100);  // lose the tail mid-block
  EXPECT_THROW(TraceFile::read(path_), std::runtime_error);
  bool truncated = false;
  const auto t = TraceFile::read_tolerant(path_, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_GE(t.blocks.size(), 8u);
  EXPECT_LT(t.blocks.size(), 10u);
  EXPECT_EQ(t.header.label, "crashy");
  // Every salvaged block is complete.
  for (const auto& b : t.blocks) EXPECT_EQ(b.records.size(), 8u);
}

TEST_F(TolerantReaderTest, SalvagedTracePostprocessesCleanly) {
  sample(20).write(path_);
  truncate_to(file_size() / 2);
  const auto t = TraceFile::read_tolerant(path_);
  const auto sorted = postprocess(t);
  EXPECT_EQ(sorted.records.size(), t.record_count());
}

TEST_F(TolerantReaderTest, HeaderDamageStillThrows) {
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out << "CHARIS";  // not even a whole magic
  out.close();
  EXPECT_THROW(TraceFile::read_tolerant(path_), std::runtime_error);
}

// The remaining tests are the UBSan/ASan audit for the salvage path: any
// truncation or byte corruption must end in a clean rejection (throw or
// truncated=true) — never UB, never an attempted multi-gigabyte allocation.

TEST_F(TolerantReaderTest, TruncationAtEveryByteIsRejectedCleanly) {
  sample(3).write(path_);
  std::ifstream in(path_, std::ios::binary);
  const std::string intact((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  in.close();
  for (std::size_t len = 0; len < intact.size(); ++len) {
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(intact.data(), static_cast<std::streamsize>(len));
    }
    bool truncated = false;
    try {
      const auto t = TraceFile::read_tolerant(path_, &truncated);
      // Salvage succeeded: the prefix really was shorter than the file, so
      // the reader must say so, and every salvaged block is complete.
      EXPECT_TRUE(truncated) << "prefix length " << len;
      for (const auto& b : t.blocks) EXPECT_EQ(b.records.size(), 8u);
    } catch (const std::runtime_error&) {
      // Header unreadable: also a clean rejection.
      EXPECT_LT(len, intact.size());
    }
  }
}

TEST_F(TolerantReaderTest, CorruptRecordCountCannotBalloonAllocation) {
  sample(4).write(path_);
  // The first block's record-count field sits right after the header and
  // the block stamp; compute its offset from the write() layout.
  const std::size_t header_bytes = 8 /*magic*/ + 4 /*version*/ + 4 + 4 +
                                   8 + 8 + 8 + 8 + 4 +
                                   std::string("crashy").size();
  const std::size_t count_offset =
      header_bytes + 8 /*nblocks*/ + 4 /*node*/ + 8 /*sent*/ + 8 /*recv*/;
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(count_offset));
    const std::uint32_t huge = 0xffffffffu;
    f.write(reinterpret_cast<const char*>(&huge), sizeof huge);
  }
  bool truncated = false;
  const auto t = TraceFile::read_tolerant(path_, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(t.blocks.size(), 0u);  // the poisoned block is the first
  EXPECT_THROW(TraceFile::read(path_), std::runtime_error);
}

TEST_F(TolerantReaderTest, CorruptBlockCountCannotBalloonAllocation) {
  sample(4).write(path_);
  const std::size_t nblocks_offset = 8 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 4 +
                                     std::string("crashy").size();
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(nblocks_offset));
    const std::uint64_t huge = 0xffffffffffffffffULL;
    f.write(reinterpret_cast<const char*>(&huge), sizeof huge);
  }
  bool truncated = false;
  const auto t = TraceFile::read_tolerant(path_, &truncated);
  // The honest blocks still salvage; the bogus trailing count is truncation.
  EXPECT_TRUE(truncated);
  EXPECT_EQ(t.blocks.size(), 4u);
}

TEST_F(TolerantReaderTest, RandomByteFlipsNeverCrashTheReader) {
  sample(6).write(path_);
  std::ifstream in(path_, std::ios::binary);
  const std::string intact((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  in.close();
  util::Rng rng(0xfeedface);
  for (int trial = 0; trial < 64; ++trial) {
    std::string corrupt = intact;
    const int flips = 1 + static_cast<int>(rng.uniform(4));
    for (int i = 0; i < flips; ++i) {
      const auto pos = static_cast<std::size_t>(rng.uniform(corrupt.size()));
      corrupt[pos] = static_cast<char>(
          static_cast<unsigned char>(corrupt[pos]) ^
          static_cast<unsigned char>(1u << rng.uniform(8)));
    }
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(corrupt.data(),
                static_cast<std::streamsize>(corrupt.size()));
    }
    bool truncated = false;
    try {
      const auto t = TraceFile::read_tolerant(path_, &truncated);
      // Decoded garbage must still be bounded by the file's actual size.
      EXPECT_LE(t.record_count(), 16u * 6u) << "trial " << trial;
    } catch (const std::runtime_error&) {
      // Clean rejection (magic/version/label damage) is fine too.
    }
  }
}

}  // namespace
}  // namespace charisma::trace
