#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace charisma::util {
namespace {

TEST(Histogram, EmptyBehaviour) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total_weight(), 0.0);
  EXPECT_EQ(h.fraction_at_or_below(100), 0.0);
  EXPECT_EQ(h.weight_at(5), 0.0);
}

TEST(Histogram, AccumulatesWeights) {
  Histogram h;
  h.add(10);
  h.add(10, 2.0);
  h.add(20, 1.0);
  EXPECT_EQ(h.distinct_values(), 2u);
  EXPECT_DOUBLE_EQ(h.weight_at(10), 3.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
}

TEST(Histogram, ZeroWeightIgnored) {
  Histogram h;
  h.add(1, 0.0);
  EXPECT_TRUE(h.empty());
}

TEST(Histogram, FractionAtOrBelow) {
  Histogram h;
  h.add(1, 1.0);
  h.add(2, 1.0);
  h.add(4, 2.0);
  EXPECT_DOUBLE_EQ(h.fraction_at_or_below(0), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_at_or_below(1), 0.25);
  EXPECT_DOUBLE_EQ(h.fraction_at_or_below(2), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_at_or_below(3), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_at_or_below(4), 1.0);
}

TEST(Cdf, FromHistogram) {
  Histogram h;
  h.add(100, 3.0);
  h.add(50, 1.0);
  const Cdf cdf(h);
  EXPECT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf.at(49), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(50), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(99), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(100), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(1e9), 1.0);
  EXPECT_EQ(cdf.min(), 50.0);
  EXPECT_EQ(cdf.max(), 100.0);
}

TEST(Cdf, FromSamplesHandlesDuplicates) {
  const Cdf cdf = Cdf::from_samples({3.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(3.0), 1.0);
}

TEST(Cdf, QuantileInverse) {
  const Cdf cdf = Cdf::from_samples({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.26), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(-1.0), 10.0);  // clamped
}

TEST(Cdf, EmptyIsSafe) {
  const Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.at(1.0), 0.0);
  EXPECT_EQ(cdf.quantile(0.5), 0.0);
}

TEST(Cdf, RenderSeriesEmitsOneRowPerPoint) {
  const Cdf cdf = Cdf::from_samples({1, 2});
  const std::string s = cdf.render_series({0.5, 1.5, 2.5});
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
}

TEST(LogSpaced, CoversDecades) {
  const auto xs = log_spaced(10, 1000, 1);
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_NEAR(xs[0], 10.0, 1e-9);
  EXPECT_NEAR(xs[1], 100.0, 1e-6);
  EXPECT_NEAR(xs[2], 1000.0, 1e-5);
  EXPECT_TRUE(log_spaced(-1, 10, 2).empty());
  EXPECT_TRUE(log_spaced(10, 1, 2).empty());
  EXPECT_TRUE(log_spaced(1, 10, 0).empty());
}

class CdfProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdfProperty, MonotoneNondecreasingAndEndsAtOne) {
  Rng rng(GetParam());
  Histogram h;
  for (int i = 0; i < 500; ++i) {
    h.add(rng.uniform_range(-1000, 1000), rng.uniform01() + 0.01);
  }
  const Cdf cdf(h);
  double prev = 0.0;
  for (const auto& p : cdf.points()) {
    EXPECT_GE(p.cumulative_fraction, prev);
    prev = p.cumulative_fraction;
  }
  EXPECT_DOUBLE_EQ(cdf.points().back().cumulative_fraction, 1.0);
}

TEST_P(CdfProperty, AtAgreesWithHistogramFraction) {
  Rng rng(GetParam() ^ 0x55);
  Histogram h;
  for (int i = 0; i < 300; ++i) h.add(rng.uniform_range(0, 100));
  const Cdf cdf(h);
  for (std::int64_t x = -5; x <= 105; x += 7) {
    EXPECT_NEAR(cdf.at(static_cast<double>(x)), h.fraction_at_or_below(x),
                1e-12);
  }
}

TEST_P(CdfProperty, BoundedInUnitInterval) {
  Rng rng(GetParam() ^ 0xb0);
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) {
    samples.push_back(rng.normal(0.0, 1e6));
  }
  const Cdf cdf = Cdf::from_samples(samples);
  for (double x = -4e6; x <= 4e6; x += 1.3e5) {
    const double f = cdf.at(x);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  EXPECT_EQ(cdf.at(cdf.min() - 1.0), 0.0);
  EXPECT_EQ(cdf.at(cdf.max()), 1.0);
}

TEST_P(CdfProperty, QuantileInverseRoundTrip) {
  Rng rng(GetParam() ^ 0x77);
  std::vector<double> samples;
  for (int i = 0; i < 250; ++i) {
    samples.push_back(static_cast<double>(rng.uniform_range(-500, 500)));
  }
  const Cdf cdf = Cdf::from_samples(samples);
  // quantile(q) is the smallest sample with at least q mass at or below it:
  // pushing it back through at() recovers at least q...
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double x = cdf.quantile(q);
    EXPECT_GE(cdf.at(x), q);
    // ...and any strictly smaller sample point has less than q mass.
    EXPECT_LT(cdf.at(std::nexttoward(x, -1e9)), std::max(q, 1e-12));
  }
  // The other direction: quantile(at(x)) never lands above x for sample
  // points (at(x) is exactly the mass at or below x).
  for (const auto& p : cdf.points()) {
    EXPECT_LE(cdf.quantile(p.cumulative_fraction), p.x);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfProperty,
                         ::testing::Values(1, 7, 21, 93, 1001));

}  // namespace
}  // namespace charisma::util
