// Deliberately hazardous input for the charisma_lint golden test.  Never
// compiled — only scanned.  Line numbers are load-bearing: the golden file
// pins every finding to its line.
#include <chrono>
#include <cstdlib>
#include <unordered_map>

long wall() {
  auto t = std::chrono::system_clock::now();
  return time(nullptr);
}

int entropy() {
  std::random_device rd;
  return rand() + static_cast<int>(rd());
}

float lossy_time = 1.0f;

void report() {
  std::unordered_map<int, int> totals;
  for (const auto& [k, v] : totals) {
    (void)k;
    (void)v;
  }
}

long allowed() {
  return time(nullptr);  // NOLINT(charisma-wallclock)
}
// NOLINT(charisma-no-such-rule) — a stale escape hatch is itself a finding.
