#include "core/export.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "analysis/analyzers.hpp"
#include "analysis/figures.hpp"
#include "analysis/iorate.hpp"
#include "cache/simulators.hpp"
#include "util/histogram.hpp"

namespace charisma::core {

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  return out;
}

void write_cdf(const std::string& path, const util::Cdf& cdf) {
  auto out = open_out(path);
  out << "# x\tF(x)\n";
  for (const auto& p : cdf.points()) {
    out << p.x << '\t' << p.cumulative_fraction << '\n';
  }
}

}  // namespace

ExportResult export_figures(const StudyOutput& study,
                            const std::string& directory) {
  ExportResult result;
  result.directory = directory;
  const analysis::SessionStore store(study.sorted);
  const auto read_only = store.read_only_sessions();
  const auto dir = [&](const std::string& name) {
    return directory + "/" + name;
  };

  {  // Figure 1: time at each concurrency level.
    const auto r = analysis::analyze_job_concurrency(store);
    auto out = open_out(dir("fig1.tsv"));
    out << "# jobs\tfraction_of_time\n";
    for (std::size_t k = 0; k < r.time_fraction.size(); ++k) {
      out << k << '\t' << r.time_fraction[k] << '\n';
    }
    ++result.files_written;
  }
  {  // Figure 2: jobs per node count.
    const auto r = analysis::analyze_node_counts(store);
    auto out = open_out(dir("fig2.tsv"));
    out << "# nodes\tjobs\tnode_seconds\n";
    for (const auto& [nodes, jobs] : r.jobs_by_nodes) {
      const auto it = r.node_seconds_by_nodes.find(nodes);
      out << nodes << '\t' << jobs << '\t'
          << (it == r.node_seconds_by_nodes.end() ? 0.0 : it->second) << '\n';
    }
    ++result.files_written;
  }
  write_cdf(dir("fig3.tsv"), analysis::analyze_file_sizes(store).cdf);
  ++result.files_written;
  {  // Figure 4: four curves in one file.
    const auto r = analysis::analyze_request_sizes(study.sorted);
    auto out = open_out(dir("fig4.tsv"));
    out << "# size\treads_cdf\tread_bytes_cdf\twrites_cdf\twrite_bytes_cdf\n";
    for (double x : util::log_spaced(64, 3.3e7, 6)) {
      out << x << '\t' << r.reads_by_count.at(x) << '\t'
          << r.reads_by_bytes.at(x) << '\t' << r.writes_by_count.at(x)
          << '\t' << r.writes_by_bytes.at(x) << '\n';
    }
    ++result.files_written;
  }
  {  // Figures 5/6: per-class sequential / consecutive CDFs.
    const auto r = analysis::analyze_sequentiality(store);
    write_cdf(dir("fig5_read_only.tsv"), r.read_only.sequential_cdf);
    write_cdf(dir("fig5_write_only.tsv"), r.write_only.sequential_cdf);
    write_cdf(dir("fig5_read_write.tsv"), r.read_write.sequential_cdf);
    write_cdf(dir("fig6_read_only.tsv"), r.read_only.consecutive_cdf);
    write_cdf(dir("fig6_write_only.tsv"), r.write_only.consecutive_cdf);
    result.files_written += 5;
  }
  {  // Figure 7: sharing CDFs.
    const auto r = analysis::analyze_sharing(store,
                                             study.raw.header.block_size);
    write_cdf(dir("fig7_read_bytes.tsv"), r.read_only.byte_shared_cdf);
    write_cdf(dir("fig7_read_blocks.tsv"), r.read_only.block_shared_cdf);
    write_cdf(dir("fig7_write_bytes.tsv"), r.write_only.byte_shared_cdf);
    result.files_written += 3;
  }
  {  // Figure 8: job hit-rate CDF, 1 and 50 buffers.
    cache::ComputeCacheConfig cfg;
    cfg.buffers_per_node = 1;
    write_cdf(dir("fig8_1buf.tsv"),
              cache::simulate_compute_cache(study.sorted, read_only, cfg)
                  .hit_rate_cdf);
    cfg.buffers_per_node = 50;
    write_cdf(dir("fig8_50buf.tsv"),
              cache::simulate_compute_cache(study.sorted, read_only, cfg)
                  .hit_rate_cdf);
    result.files_written += 2;
  }
  {  // Figure 9: hit rate vs buffers, LRU and FIFO.
    auto out = open_out(dir("fig9.tsv"));
    out << "# buffers\tlru\tfifo\n";
    for (const double b : analysis::fig9_buffer_grid()) {
      const auto buffers = static_cast<std::size_t>(b);
      cache::IoNodeSimConfig cfg;
      cfg.total_buffers = buffers;
      cfg.policy = cache::Policy::kLru;
      const double lru =
          cache::simulate_io_cache(study.sorted, read_only, cfg).hit_rate;
      cfg.policy = cache::Policy::kFifo;
      const double fifo =
          cache::simulate_io_cache(study.sorted, read_only, cfg).hit_rate;
      out << buffers << '\t' << lru << '\t' << fifo << '\n';
    }
    ++result.files_written;
  }
  {  // Extra: the I/O-rate timeline.
    const auto r = analysis::analyze_io_rate(study.sorted);
    auto out = open_out(dir("iorate.tsv"));
    out << "# t_seconds\tread_mb\twrite_mb\n";
    for (const auto& b : r.timeline) {
      out << static_cast<double>(b.start) / util::kSecond << '\t'
          << static_cast<double>(b.bytes_read) / 1e6 << '\t'
          << static_cast<double>(b.bytes_written) / 1e6 << '\n';
    }
    ++result.files_written;
  }

  {  // The gnuplot script tying it together.
    result.plot_script = dir("plots.gp");
    auto out = open_out(result.plot_script);
    out << "# gnuplot script regenerating the paper's figures from the\n"
           "# exported series: gnuplot -p plots.gp\n"
           "set style data linespoints\n"
           "set key bottom right\n"
           "set term push\n"
           "set grid\n\n"
           "set title 'Figure 1: concurrent jobs'\n"
           "set xlabel 'jobs running'; set ylabel 'fraction of time'\n"
           "plot 'fig1.tsv' using 1:2 with boxes title 'this reproduction'\n"
           "pause -1\n\n"
           "set title 'Figure 3: file sizes at close'\n"
           "set logscale x; set xlabel 'bytes'; set ylabel 'CDF'\n"
           "plot 'fig3.tsv' title 'files'\n"
           "pause -1\n\n"
           "set title 'Figure 4: request sizes'\n"
           "plot 'fig4.tsv' using 1:2 title 'reads', \\\n"
           "     'fig4.tsv' using 1:3 title 'read bytes', \\\n"
           "     'fig4.tsv' using 1:4 title 'writes', \\\n"
           "     'fig4.tsv' using 1:5 title 'write bytes'\n"
           "pause -1\n\n"
           "unset logscale x\n"
           "set title 'Figure 9: I/O-node cache'\n"
           "set xlabel '4 KB buffers'; set ylabel 'hit rate'\n"
           "plot 'fig9.tsv' using 1:2 title 'LRU', "
           "'fig9.tsv' using 1:3 title 'FIFO'\n"
           "pause -1\n";
    ++result.files_written;
  }
  return result;
}

ExportResult export_campaign(const CampaignResult& campaign,
                             const std::string& directory) {
  ExportResult result;
  result.directory = directory;
  std::filesystem::create_directories(directory);
  {
    auto out = open_out(directory + "/campaign_studies.tsv");
    out << "# label\tseed\tscale\tdigest\tevents\trecords\tops\t"
           "sim_end_us\tidle\tmultiprog\tsingle_node\tsmall_read\t"
           "small_write\ttemporary\tmode0\n";
    for (const auto& s : campaign.studies) {
      out << s.label << '\t' << s.seed << '\t' << s.scale << '\t' << std::hex
          << "0x" << s.trace_digest << std::dec << '\t'
          << s.events_dispatched << '\t' << s.records << '\t' << s.total_ops
          << '\t' << s.sim_end << '\t' << s.idle_fraction << '\t'
          << s.multiprogrammed_fraction << '\t'
          << s.single_node_job_fraction << '\t' << s.small_read_fraction
          << '\t' << s.small_write_fraction << '\t' << s.temporary_fraction
          << '\t' << s.mode0_fraction << '\n';
    }
    ++result.files_written;
  }
  {
    auto out = open_out(directory + "/campaign_aggregate.tsv");
    out << "# stat\tn\tmean\tstddev\tmin\tmax\tci95_half\n";
    for (const auto& a : campaign.aggregates) {
      out << a.name << '\t' << a.summary.count() << '\t' << a.summary.mean()
          << '\t' << a.summary.stddev() << '\t' << a.summary.min() << '\t'
          << a.summary.max() << '\t' << a.ci95_half_width() << '\n';
    }
    ++result.files_written;
  }
  for (const auto& env : campaign.figure_envelopes) {
    auto out = open_out(directory + "/campaign_" + env.name + ".tsv");
    out << "# x\tmean\tmin\tmax\tci95_half\tn\n";
    for (std::size_t i = 0; i < env.size(); ++i) {
      out << env.xs[i] << '\t' << env.mean[i] << '\t' << env.min[i] << '\t'
          << env.max[i] << '\t' << env.ci95_half[i] << '\t'
          << env.replications << '\n';
    }
    ++result.files_written;
  }
  return result;
}

}  // namespace charisma::core
