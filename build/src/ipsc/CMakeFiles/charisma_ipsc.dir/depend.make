# Empty dependencies file for charisma_ipsc.
# This may be replaced when dependencies are built.
