#include "core/report.hpp"

#include <sstream>

#include "analysis/analyzers.hpp"
#include "analysis/iorate.hpp"
#include "core/strided.hpp"
#include "util/units.hpp"

namespace charisma::core {

std::string full_report(const StudyOutput& study) {
  const analysis::SessionStore store(study.sorted);
  std::ostringstream out;
  out << "=== CHARISMA characterization ("
      << study.sorted.records.size() << " events, "
      << util::format_duration(study.sim_end) << " simulated) ===\n\n";

  out << "--- Jobs (Figure 1) ---\n"
      << analysis::analyze_job_concurrency(store).render() << '\n';
  out << "--- Nodes per job (Figure 2) ---\n"
      << analysis::analyze_node_counts(store).render() << '\n';
  out << "--- File population (S4.2) ---\n"
      << analysis::analyze_file_population(store).render() << '\n';
  out << "--- Files per job (Table 1) ---\n"
      << analysis::analyze_files_per_job(store).render() << '\n';
  out << "--- File sizes (Figure 3) ---\n"
      << analysis::analyze_file_sizes(store).render() << '\n';
  out << "--- Request sizes (Figure 4) ---\n"
      << analysis::analyze_request_sizes(study.sorted).render() << '\n';
  out << "--- Sequentiality (Figures 5/6) ---\n"
      << analysis::analyze_sequentiality(store).render() << '\n';
  out << "--- Interval regularity (Table 2) ---\n"
      << analysis::analyze_intervals(store).render() << '\n';
  out << "--- Request-size regularity (Table 3) ---\n"
      << analysis::analyze_request_regularity(store).render() << '\n';
  out << "--- I/O modes (S4.6) ---\n"
      << analysis::analyze_mode_usage(store).render() << '\n';
  out << "--- Sharing (Figure 7) ---\n"
      << analysis::analyze_sharing(store, study.raw.header.block_size)
             .render()
      << '\n';
  out << "--- I/O rate over time ---\n"
      << analysis::analyze_io_rate(study.sorted).render() << '\n';
  out << "--- Strided rewriting (S5 recommendation) ---\n"
      << rewrite_strided(study.sorted, study.raw.header.io_nodes,
                         study.raw.header.block_size)
             .render();
  return out.str();
}

}  // namespace charisma::core
