file(REMOVE_RECURSE
  "CMakeFiles/charisma_workload.dir/driver.cpp.o"
  "CMakeFiles/charisma_workload.dir/driver.cpp.o.d"
  "CMakeFiles/charisma_workload.dir/generator.cpp.o"
  "CMakeFiles/charisma_workload.dir/generator.cpp.o.d"
  "CMakeFiles/charisma_workload.dir/scheduler.cpp.o"
  "CMakeFiles/charisma_workload.dir/scheduler.cpp.o.d"
  "libcharisma_workload.a"
  "libcharisma_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
