#include "cache/block_cache.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace charisma::cache {

BlockCache::BlockCache(std::size_t capacity, Policy policy)
    : capacity_(capacity), policy_(policy) {
  CHECK(capacity_ < kNil, "block cache capacity ", capacity_,
        " exceeds the slab index range");
  if (capacity_ == 0) return;
  // Twice the capacity rounded up to a power of two: the load factor never
  // passes 1/2 (probes stay short) and the table never rehashes, so a miss
  // costs no allocation once the slab has grown to capacity.
  const std::size_t buckets =
      std::bit_ceil(std::max<std::size_t>(16, capacity_ * 2));
  slots_.resize(buckets);
  mask_ = buckets - 1;
}

bool BlockCache::access(const BlockKey& key, NodeId node) {
  ++accesses_;
  if (capacity_ == 0) return false;
  {
    const std::size_t slot = probe(key);
    if (slots_[slot].node != kEmptySlot) {
      ++hits_;
      const std::uint32_t idx = slots_[slot].node;
      if (policy_ != Policy::kFifo && idx != head_) {
        // LRU and IP-aware promote on hit; FIFO keeps insertion order.
        unlink(idx);
        push_front(idx);
      }
      if (policy_ == Policy::kInterprocessAware) accessors_[idx].insert(node);
      return true;
    }
  }
  std::uint32_t idx;
  if (size_ >= capacity_) {
    idx = evict_one();
    nodes_[idx].key = key;
    if (policy_ == Policy::kInterprocessAware) accessors_[idx].clear();
  } else {
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{key, kNil, kNil});
    if (policy_ == Policy::kInterprocessAware) accessors_.emplace_back();
  }
  if (policy_ == Policy::kInterprocessAware) accessors_[idx].insert(node);
  push_front(idx);
  ++size_;
  // Eviction's backward-shift erase may rearrange the probe chain, so the
  // insertion slot is re-probed after it rather than reused from the lookup.
  const std::size_t slot = probe(key);
  DCHECK(slots_[slot].node == kEmptySlot,
         "double-insert of block into the cache index");
  slots_[slot] = Slot{key, idx};
  CHECK(size_ <= capacity_, "cache occupancy ", size_, " exceeds capacity ",
        capacity_);
  DCHECK(size_ <= nodes_.size(), "recency slab out of sync with entry count");
  return false;
}

void BlockCache::unlink(std::uint32_t idx) {
  Node& n = nodes_[idx];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    tail_ = n.prev;
  }
  n.prev = kNil;
  n.next = kNil;
}

void BlockCache::push_front(std::uint32_t idx) {
  Node& n = nodes_[idx];
  n.prev = kNil;
  n.next = head_;
  if (head_ != kNil) nodes_[head_].prev = idx;
  head_ = idx;
  if (tail_ == kNil) tail_ = idx;
}

std::uint32_t BlockCache::evict_one() {
  DCHECK(tail_ != kNil, "evicting from an empty cache");
  std::uint32_t victim = tail_;
  if (policy_ == Policy::kInterprocessAware) {
    // IP-aware: among the coldest few blocks, evict the one consumed by the
    // most distinct nodes — its interprocess reuse is behind it.
    std::size_t victim_nodes = accessors_[victim].size();
    std::uint32_t it = victim;
    for (std::size_t scanned = 1;
         scanned < kEvictionScan && nodes_[it].prev != kNil; ++scanned) {
      it = nodes_[it].prev;
      const std::size_t n = accessors_[it].size();
      if (n > victim_nodes) {
        victim = it;
        victim_nodes = n;
      }
    }
  }
  erase_slot_for(nodes_[victim].key);
  unlink(victim);
  --size_;
  return victim;
}

void BlockCache::erase_slot_for(const BlockKey& key) {
  std::size_t gap = probe(key);
  CHECK(slots_[gap].node != kEmptySlot, "evicted block (file=", key.file,
        ", block=", key.block, ") missing from the cache index");
  // Backward-shift deletion: walk the chain after the gap and pull back any
  // entry whose home slot lies cyclically at or before the gap, so lookups
  // never need tombstones.
  std::size_t scan = gap;
  for (;;) {
    slots_[gap].node = kEmptySlot;
    for (;;) {
      scan = (scan + 1) & mask_;
      if (slots_[scan].node == kEmptySlot) return;
      const std::size_t home = BlockKeyHash{}(slots_[scan].key) & mask_;
      const bool movable = (scan > gap) ? (home <= gap || home > scan)
                                        : (home <= gap && home > scan);
      if (movable) {
        slots_[gap] = slots_[scan];
        gap = scan;
        break;
      }
    }
  }
}

}  // namespace charisma::cache
