#include "cache/block_cache.hpp"

#include <gtest/gtest.h>

namespace charisma::cache {
namespace {

TEST(BlockCache, ZeroCapacityNeverHits) {
  BlockCache c(0, Policy::kLru);
  EXPECT_FALSE(c.access({1, 0}, 0));
  EXPECT_FALSE(c.access({1, 0}, 0));
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.accesses(), 2u);
  EXPECT_EQ(c.size(), 0u);
}

TEST(BlockCache, HitOnResidentBlock) {
  BlockCache c(2, Policy::kLru);
  EXPECT_FALSE(c.access({1, 0}, 0));
  EXPECT_TRUE(c.access({1, 0}, 0));
  EXPECT_TRUE(c.contains({1, 0}));
  EXPECT_FALSE(c.contains({1, 1}));
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.5);
}

TEST(BlockCache, DistinctFilesDistinctBlocks) {
  BlockCache c(4, Policy::kLru);
  (void)c.access({1, 0}, 0);
  EXPECT_FALSE(c.access({2, 0}, 0));
  EXPECT_FALSE(c.access({1, 1}, 0));
  EXPECT_EQ(c.size(), 3u);
}

TEST(BlockCache, LruEvictsLeastRecentlyUsed) {
  BlockCache c(2, Policy::kLru);
  (void)c.access({1, 0}, 0);  // A
  (void)c.access({1, 1}, 0);  // B
  (void)c.access({1, 0}, 0);  // touch A -> B is LRU
  (void)c.access({1, 2}, 0);  // C evicts B
  EXPECT_TRUE(c.contains({1, 0}));
  EXPECT_FALSE(c.contains({1, 1}));
  EXPECT_TRUE(c.contains({1, 2}));
}

TEST(BlockCache, FifoIgnoresHitsForEviction) {
  BlockCache c(2, Policy::kFifo);
  (void)c.access({1, 0}, 0);  // A inserted first
  (void)c.access({1, 1}, 0);  // B
  (void)c.access({1, 0}, 0);  // hit on A does NOT refresh it
  (void)c.access({1, 2}, 0);  // C evicts A (oldest insertion)
  EXPECT_FALSE(c.contains({1, 0}));
  EXPECT_TRUE(c.contains({1, 1}));
  EXPECT_TRUE(c.contains({1, 2}));
}

TEST(BlockCache, LruAndFifoDivergeOnReReference) {
  // The canonical pattern where LRU beats FIFO: a hot block re-referenced
  // while a stream flows past.
  const auto run = [](Policy policy) {
    BlockCache c(4, policy);
    std::uint64_t hits = 0;
    for (std::int64_t i = 0; i < 100; ++i) {
      hits += c.access({1, 0}, 0);       // hot block
      (void)c.access({2, i}, 0);          // stream
    }
    return hits;
  };
  EXPECT_GT(run(Policy::kLru), run(Policy::kFifo));
  EXPECT_EQ(run(Policy::kLru), 99u);  // always resident under LRU
}

TEST(BlockCache, IpAwareEvictsBroadcastConsumedBlocks) {
  BlockCache c(2, Policy::kInterprocessAware);
  // Block A consumed by 3 distinct nodes; block B by one node.
  (void)c.access({1, 0}, 0);
  (void)c.access({1, 0}, 1);
  (void)c.access({1, 0}, 2);
  (void)c.access({1, 1}, 0);
  // A was touched more recently than B, but A served 3 nodes: evict A.
  (void)c.access({1, 2}, 5);
  EXPECT_FALSE(c.contains({1, 0}));
  EXPECT_TRUE(c.contains({1, 1}));
}

TEST(BlockCache, CapacityOneDegeneratesToMostRecent) {
  BlockCache c(1, Policy::kLru);
  (void)c.access({1, 0}, 0);
  (void)c.access({1, 1}, 0);
  EXPECT_FALSE(c.contains({1, 0}));
  EXPECT_TRUE(c.contains({1, 1}));
  EXPECT_EQ(c.size(), 1u);
}

TEST(BlockCache, SizeNeverExceedsCapacity) {
  BlockCache c(8, Policy::kFifo);
  for (std::int64_t i = 0; i < 100; ++i) (void)c.access({1, i}, 0);
  EXPECT_EQ(c.size(), 8u);
  EXPECT_EQ(c.capacity(), 8u);
}

}  // namespace
}  // namespace charisma::cache
