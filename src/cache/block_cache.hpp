// Trace-driven block cache with pluggable replacement.
//
// Used by the paper's three cache simulations (compute-node, I/O-node,
// combined).  Policies: LRU and FIFO (the paper's §4.8), plus the
// interprocess-aware policy the paper's §5 calls for ("replacement policies
// other than LRU or FIFO should be developed ... to optimize for
// interprocess locality") — it preferentially evicts blocks that many
// distinct nodes have already consumed, since an interleaved or broadcast
// block is dead once every party has read it.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "cfs/types.hpp"

namespace charisma::cache {

using cfs::FileId;
using cfs::NodeId;

struct BlockKey {
  FileId file = cfs::kNoFile;
  std::int64_t block = 0;
  bool operator==(const BlockKey&) const = default;
};

struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const noexcept {
    std::uint64_t x = (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(k.file))
                       << 40) ^
                      static_cast<std::uint64_t>(k.block);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

enum class Policy : std::uint8_t { kLru, kFifo, kInterprocessAware };

[[nodiscard]] constexpr const char* to_string(Policy p) noexcept {
  switch (p) {
    case Policy::kLru: return "LRU";
    case Policy::kFifo: return "FIFO";
    case Policy::kInterprocessAware: return "IP-aware";
  }
  return "?";
}

class BlockCache {
 public:
  BlockCache(std::size_t capacity, Policy policy);

  /// Touches `key` on behalf of `node`; returns true on hit.  Misses insert
  /// the block (evicting per policy when full).  capacity == 0 never hits.
  bool access(const BlockKey& key, NodeId node);

  [[nodiscard]] bool contains(const BlockKey& key) const {
    return entries_.count(key) > 0;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }
  [[nodiscard]] double hit_rate() const noexcept {
    return accesses_ ? static_cast<double>(hits_) /
                           static_cast<double>(accesses_)
                     : 0.0;
  }

 private:
  struct Entry {
    std::list<BlockKey>::iterator order_it;
    std::unordered_set<NodeId> accessors;  // only kept for IP-aware
  };
  void evict_one();

  std::size_t capacity_;
  Policy policy_;
  std::list<BlockKey> order_;  // front = most recent (LRU) / newest (FIFO)
  std::unordered_map<BlockKey, Entry, BlockKeyHash> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t accesses_ = 0;

  static constexpr std::size_t kEvictionScan = 8;  // IP-aware candidate set
};

}  // namespace charisma::cache
