// Streaming summary statistics (Welford's algorithm).
#pragma once

#include <cstdint>
#include <limits>

namespace charisma::util {

/// Numerically stable single-pass mean / variance / extrema accumulator.
class Summary {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Merges another summary (parallel reduction).
  void merge(const Summary& other) noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Half-width of the normal-approximation 95% confidence interval
/// (1.96 * stddev / sqrt(n)).  Defined for every n: fewer than two samples
/// have no spread to estimate, so the interval collapses to the zero-width
/// [mean, mean] (never NaN) — campaign envelopes rely on that for
/// single-replication runs.
[[nodiscard]] double ci95_half_width(const Summary& s) noexcept;

}  // namespace charisma::util
