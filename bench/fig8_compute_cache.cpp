// Figure 8: trace-driven simulation of compute-node caching (one-block
// read-only buffers, LRU), reported as a CDF of per-job hit rates.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  auto& ctx = Context::instance();
  std::vector<cache::ComputeCacheConfig> configs(3);
  const std::size_t buffer_counts[3] = {1, 10, 50};
  for (int i = 0; i < 3; ++i) {
    configs[static_cast<std::size_t>(i)].buffers_per_node = buffer_counts[i];
  }
  // One parallel sweep over all three buffer counts; results come back in
  // config order regardless of --threads.
  const std::vector<cache::ComputeCacheResult> results =
      ctx.sweeps().run_compute(configs);

  util::Table curve({"hit rate <=", "1 buffer", "10 buffers", "50 buffers"});
  for (double x : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    curve.add_row({util::fmt(x * 100.0) + "%",
                   util::fmt(results[0].hit_rate_cdf.at(x), 3),
                   util::fmt(results[1].hit_rate_cdf.at(x), 3),
                   util::fmt(results[2].hit_rate_cdf.at(x), 3)});
  }
  std::printf("CDF of per-job hit rates:\n%s\n", curve.render().c_str());

  Comparison cmp("Figure 8: compute-node caching");
  cmp.percent_row("jobs with hit rate > 75% (1 buffer)",
                  analysis::paper::kJobsAboveHitRate75,
                  results[0].fraction_jobs_above_75);
  cmp.percent_row("jobs with 0% hit rate (1 buffer)",
                  analysis::paper::kJobsAtZeroHitRate,
                  results[0].fraction_jobs_zero);
  cmp.row("one buffer vs many", "one buffer as good as many",
          "overall hit rate 1/10/50 buf: " +
              util::fmt(results[0].overall_hit_rate() * 100.0) + "/" +
              util::fmt(results[1].overall_hit_rate() * 100.0) + "/" +
              util::fmt(results[2].overall_hit_rate() * 100.0) + "%");
  cmp.print();
}

void BM_ComputeCacheSim(benchmark::State& state) {
  auto& ctx = Context::instance();
  cache::ComputeCacheConfig cfg;
  cfg.buffers_per_node = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache::simulate_compute_cache(ctx.study().sorted, ctx.read_only(),
                                      cfg));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ctx.study().sorted.records.size()) *
      state.iterations());
}
BENCHMARK(BM_ComputeCacheSim)->Arg(1)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Figure 8 (compute-node caching)",
                    charisma::bench::reproduce)
