// The iPSC/860 machine model.
//
// Assembles the substrates into the machine the paper traced: compute nodes
// on a hypercube, dedicated I/O nodes each tapped onto a single compute node
// (they are NOT on the hypercube proper — paper §2.4), one service node for
// the Ethernet/host connection, per-node clocks synchronized at startup that
// then drift, and one disk per I/O node.
#pragma once

#include <cstdint>
#include <vector>

#include "disk/disk.hpp"
#include "net/hypercube.hpp"
#include "net/message.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace charisma::ipsc {

using net::NodeId;
using util::MicroSec;

struct MachineConfig {
  NodeId compute_nodes = 128;
  int io_nodes = 10;
  std::int64_t compute_memory = 8 * util::kMiB;
  std::int64_t io_memory = 4 * util::kMiB;
  net::MessageCostParams net;
  disk::DiskParams disk;
  double max_clock_drift_ppm = 150.0;   // "drifts significantly" (§3.2)
  MicroSec max_clock_offset = 2000;     // residual skew after startup sync

  /// The NAS Ames machine from the paper: 128 compute nodes (8 MB), 10 I/O
  /// nodes (4 MB, one 760 MB disk each), one service node.
  [[nodiscard]] static MachineConfig nas_ames();
  /// A small machine for unit tests.
  [[nodiscard]] static MachineConfig tiny();

  /// Logical processes for the sharded engine: one per compute node, one
  /// per I/O node, one for the service node (in that id order).
  [[nodiscard]] int lp_count() const noexcept {
    return static_cast<int>(compute_nodes) + io_nodes + 1;
  }
};

class Machine {
 public:
  Machine(sim::Engine& engine, const MachineConfig& config, util::Rng& rng);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] NodeId compute_nodes() const noexcept {
    return config_.compute_nodes;
  }
  [[nodiscard]] int io_nodes() const noexcept { return config_.io_nodes; }
  [[nodiscard]] const net::Hypercube& cube() const noexcept { return cube_; }

  /// The clock of a compute node (the collector on the service node reads
  /// engine time directly — it is the reference).
  [[nodiscard]] const sim::DriftingClock& clock(NodeId node) const;
  [[nodiscard]] disk::Disk& disk(int io_node);

  /// Compute node that an I/O node is tapped onto.
  [[nodiscard]] NodeId io_tap(int io_node) const;
  /// Compute node the service node is tapped onto.
  [[nodiscard]] NodeId service_tap() const noexcept { return 0; }

  /// Logical-process ids for the sharded engine, matching
  /// MachineConfig::lp_count(): compute nodes first, then I/O nodes, then
  /// the service node.
  [[nodiscard]] int lp_of_compute(NodeId node) const noexcept {
    return static_cast<int>(node);
  }
  [[nodiscard]] int lp_of_io(int io_node) const noexcept {
    return static_cast<int>(config_.compute_nodes) + io_node;
  }
  [[nodiscard]] int service_lp() const noexcept {
    return static_cast<int>(config_.compute_nodes) + config_.io_nodes;
  }
  [[nodiscard]] int lp_count() const noexcept { return config_.lp_count(); }

  /// Message latencies.  I/O and service traffic pays the cube route to the
  /// tap plus one tap hop.
  [[nodiscard]] MicroSec compute_to_compute(NodeId from, NodeId to,
                                            std::int64_t bytes) const;
  [[nodiscard]] MicroSec compute_to_io(NodeId from, int io_node,
                                       std::int64_t bytes) const;
  [[nodiscard]] MicroSec compute_to_service(NodeId from,
                                            std::int64_t bytes) const;

  [[nodiscard]] const net::MessageModel& messages() const noexcept {
    return messages_;
  }

 private:
  sim::Engine* engine_;
  MachineConfig config_;
  net::Hypercube cube_;
  net::MessageModel messages_;
  std::vector<sim::DriftingClock> clocks_;
  std::vector<disk::Disk> disks_;
  std::vector<NodeId> io_taps_;  // tap node per I/O node, computed once
};

}  // namespace charisma::ipsc
