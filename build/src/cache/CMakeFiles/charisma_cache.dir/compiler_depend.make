# Empty compiler generated dependencies file for charisma_cache.
# This may be replaced when dependencies are built.
