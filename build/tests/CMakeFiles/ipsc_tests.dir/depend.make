# Empty dependencies file for ipsc_tests.
# This may be replaced when dependencies are built.
