file(REMOVE_RECURSE
  "CMakeFiles/charisma_trace.dir/collector.cpp.o"
  "CMakeFiles/charisma_trace.dir/collector.cpp.o.d"
  "CMakeFiles/charisma_trace.dir/instrumented_client.cpp.o"
  "CMakeFiles/charisma_trace.dir/instrumented_client.cpp.o.d"
  "CMakeFiles/charisma_trace.dir/postprocess.cpp.o"
  "CMakeFiles/charisma_trace.dir/postprocess.cpp.o.d"
  "CMakeFiles/charisma_trace.dir/record.cpp.o"
  "CMakeFiles/charisma_trace.dir/record.cpp.o.d"
  "CMakeFiles/charisma_trace.dir/trace_file.cpp.o"
  "CMakeFiles/charisma_trace.dir/trace_file.cpp.o.d"
  "libcharisma_trace.a"
  "libcharisma_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
