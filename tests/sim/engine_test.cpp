#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace charisma::sim {
namespace {

TEST(Engine, DispatchesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
  EXPECT_EQ(e.dispatched_events(), 3u);
}

TEST(Engine, TiesBreakInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  MicroSec seen = -1;
  e.schedule_at(100, [&] {
    e.schedule_in(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150);
}

TEST(Engine, PastSchedulingThrows) {
  Engine e;
  e.schedule_at(10, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5, [] {}), util::CheckFailure);
  EXPECT_THROW(e.schedule_in(-1, [] {}), util::CheckFailure);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(20, [&] { ++fired; });
  e.schedule_at(30, [&] { ++fired; });
  e.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 20);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesTimeWhenIdle) {
  Engine e;
  e.run_until(500);
  EXPECT_EQ(e.now(), 500);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_at(1, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) e.schedule_in(1, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), 99);
}

}  // namespace
}  // namespace charisma::sim
