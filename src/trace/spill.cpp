#include "trace/spill.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace charisma::trace {

namespace {

template <typename T>
void put(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T take(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("trace file truncated");
  return v;
}

inline void fnv1a(std::uint64_t& h, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
}

template <typename T>
inline void fnv1a_value(std::uint64_t& h, T v) noexcept {
  fnv1a(h, &v, sizeof v);
}

}  // namespace

// --- SpilledTrace ---------------------------------------------------------

SpilledTrace::SpilledTrace(SpilledTrace&& other) noexcept
    : header(std::move(other.header)),
      blocks(std::move(other.blocks)),
      path_(std::move(other.path_)),
      owns_file_(std::exchange(other.owns_file_, false)) {
  other.path_.clear();
}

SpilledTrace& SpilledTrace::operator=(SpilledTrace&& other) noexcept {
  if (this != &other) {
    remove_backing_file();
    header = std::move(other.header);
    blocks = std::move(other.blocks);
    path_ = std::move(other.path_);
    owns_file_ = std::exchange(other.owns_file_, false);
    other.path_.clear();
  }
  return *this;
}

SpilledTrace::~SpilledTrace() { remove_backing_file(); }

void SpilledTrace::remove_backing_file() noexcept {
  if (owns_file_ && !path_.empty()) std::remove(path_.c_str());
  owns_file_ = false;
}

std::uint64_t SpilledTrace::record_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : blocks) n += b.count;
  return n;
}

std::uint64_t SpilledTrace::digest() const {
  // Same fold, same order as TraceFile::digest(): header fields, then per
  // block the stamps, the count, and the records' encoded bytes — which are
  // exactly the payload bytes on disk, so they are folded straight from the
  // file without decoding.
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  fnv1a_value(h, header.compute_nodes);
  fnv1a_value(h, header.io_nodes);
  fnv1a_value(h, header.block_size);
  fnv1a_value(h, header.seed);
  fnv1a_value(h, header.trace_start);
  fnv1a_value(h, header.trace_end);
  fnv1a(h, header.label.data(), header.label.size());
  std::ifstream in(path_, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open spilled trace: " + path_);
  std::vector<std::uint8_t> buf;
  for (const auto& b : blocks) {
    fnv1a_value(h, b.node);
    fnv1a_value(h, b.sent_local);
    fnv1a_value(h, b.recv_global);
    fnv1a_value(h, b.count);
    buf.resize(static_cast<std::size_t>(b.count) * Record::kEncodedSize);
    in.seekg(b.payload_offset);
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    if (!in) throw std::runtime_error("spilled trace truncated: " + path_);
    fnv1a(h, buf.data(), buf.size());
  }
  return h;
}

void SpilledTrace::read_block(std::size_t index, std::ifstream& in,
                              std::vector<Record>& out) const {
  CHECK(index < blocks.size(), "spill block ", index, " out of range (",
        blocks.size(), " blocks)");
  const SpillBlock& b = blocks[index];
  out.clear();
  out.reserve(b.count);
  std::uint8_t buf[Record::kEncodedSize];
  in.seekg(b.payload_offset);
  for (std::uint32_t i = 0; i < b.count; ++i) {
    in.read(reinterpret_cast<char*>(buf), sizeof buf);
    if (!in) {
      throw std::runtime_error("spilled trace truncated: " + path_);
    }
    out.push_back(Record::decode(buf));
  }
}

std::ifstream SpilledTrace::open_payload() const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open spilled trace: " + path_);
  return in;
}

SpilledTrace SpilledTrace::open(const std::string& path, bool tolerant,
                                bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  const std::int64_t file_size = static_cast<std::int64_t>(in.tellg());
  in.seekg(0);
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, TraceFile::kMagic, sizeof magic) != 0) {
    throw std::runtime_error("not a CHARISMA trace: " + path);
  }
  if (take<std::uint32_t>(in) != TraceFile::kVersion) {
    throw std::runtime_error("unsupported trace version");
  }
  SpilledTrace t;
  t.path_ = path;
  t.header.compute_nodes = take<std::int32_t>(in);
  t.header.io_nodes = take<std::int32_t>(in);
  t.header.block_size = take<std::int64_t>(in);
  t.header.seed = take<std::uint64_t>(in);
  t.header.trace_start = take<std::int64_t>(in);
  t.header.trace_end = take<std::int64_t>(in);
  {
    const auto n = take<std::uint32_t>(in);
    if (n > (1u << 20)) throw std::runtime_error("trace label too long");
    t.header.label.assign(n, '\0');
    in.read(t.header.label.data(), n);
    if (!in) throw std::runtime_error("trace file truncated");
  }

  const auto nblocks = take<std::uint64_t>(in);
  const std::uint64_t max_plausible_blocks =
      static_cast<std::uint64_t>(file_size) / 24 + 1;
  t.blocks.reserve(
      std::min(tolerant ? max_plausible_blocks : nblocks,
               max_plausible_blocks));
  // Tolerant mode scans frames to end-of-file rather than trusting the
  // declared count: a crash while spilling leaves the count placeholder at
  // zero even though complete blocks sit on disk, and the tolerant-reader
  // contract says those survive.  Strict mode requires the declared count.
  std::uint64_t scanned = 0;
  while (tolerant ? true : scanned < nblocks) {
    SpillBlock b;
    try {
      if (tolerant) {
        // Probe for end-of-data before committing to a frame.
        if (static_cast<std::int64_t>(in.tellg()) >= file_size) break;
      }
      b.node = take<std::int32_t>(in);
      b.sent_local = take<std::int64_t>(in);
      b.recv_global = take<std::int64_t>(in);
      b.count = take<std::uint32_t>(in);
      b.payload_offset = static_cast<std::int64_t>(in.tellg());
      if (b.payload_offset < 0 ||
          static_cast<std::int64_t>(b.count) >
              (file_size - b.payload_offset) /
                  static_cast<std::int64_t>(Record::kEncodedSize)) {
        throw std::runtime_error("trace file truncated");
      }
      in.seekg(b.payload_offset +
               static_cast<std::int64_t>(b.count) *
                   static_cast<std::int64_t>(Record::kEncodedSize));
    } catch (const std::runtime_error&) {
      if (!tolerant) throw;
      if (truncated != nullptr) *truncated = true;
      return t;  // keep every complete block before the crash point
    }
    t.blocks.push_back(b);
    ++scanned;
  }
  if (tolerant && truncated != nullptr && scanned != nblocks) {
    *truncated = true;  // count was never patched or overstated
  }
  return t;
}

// --- SpillWriter ----------------------------------------------------------

SpillWriter::SpillWriter(std::string path, const TraceHeader& header)
    : path_(std::move(path)), header_(header) {
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) throw std::runtime_error("cannot open spill file: " + path_);
  out_.write(TraceFile::kMagic, sizeof TraceFile::kMagic);
  put<std::uint32_t>(out_, TraceFile::kVersion);
  put<std::int32_t>(out_, header_.compute_nodes);
  put<std::int32_t>(out_, header_.io_nodes);
  put<std::int64_t>(out_, header_.block_size);
  put<std::uint64_t>(out_, header_.seed);
  put<std::int64_t>(out_, header_.trace_start);
  trace_end_offset_ = static_cast<std::int64_t>(out_.tellp());
  put<std::int64_t>(out_, 0);  // trace_end: patched by finish()
  put<std::uint32_t>(out_, static_cast<std::uint32_t>(header_.label.size()));
  out_.write(header_.label.data(),
             static_cast<std::streamsize>(header_.label.size()));
  block_count_offset_ = static_cast<std::int64_t>(out_.tellp());
  put<std::uint64_t>(out_, 0);  // block count: patched by finish()
  if (!out_) throw std::runtime_error("spill write failed: " + path_);
}

void SpillWriter::append(const TraceBlock& block) {
  CHECK(!finished_, "SpillWriter::append after finish");
  put<std::int32_t>(out_, block.node);
  put<std::int64_t>(out_, block.sent_local);
  put<std::int64_t>(out_, block.recv_global);
  put<std::uint32_t>(out_, static_cast<std::uint32_t>(block.records.size()));
  SpillBlock idx;
  idx.node = block.node;
  idx.sent_local = block.sent_local;
  idx.recv_global = block.recv_global;
  idx.count = static_cast<std::uint32_t>(block.records.size());
  idx.payload_offset = static_cast<std::int64_t>(out_.tellp());
  encode_buf_.resize(block.records.size() * Record::kEncodedSize);
  std::uint8_t* p = encode_buf_.data();
  for (const auto& r : block.records) {
    r.encode(p);
    p += Record::kEncodedSize;
  }
  out_.write(reinterpret_cast<const char*>(encode_buf_.data()),
             static_cast<std::streamsize>(encode_buf_.size()));
  if (!out_) throw std::runtime_error("spill write failed: " + path_);
  index_.push_back(idx);
}

SpilledTrace SpillWriter::finish(MicroSec trace_end) {
  CHECK(!finished_, "SpillWriter::finish called twice");
  finished_ = true;
  out_.seekp(trace_end_offset_);
  put<std::int64_t>(out_, trace_end);
  out_.seekp(block_count_offset_);
  put<std::uint64_t>(out_, static_cast<std::uint64_t>(index_.size()));
  out_.flush();
  if (!out_) throw std::runtime_error("spill write failed: " + path_);
  out_.close();
  SpilledTrace t;
  t.header = header_;
  t.header.trace_end = trace_end;
  t.blocks = std::move(index_);
  t.path_ = path_;
  t.owns_file_ = true;
  return t;
}

}  // namespace charisma::trace
