// Job scripts: the unit of work the workload driver executes.
//
// An application archetype compiles, per compute node, into a flat list of
// operations.  Scripts keep the generator testable (pure data out of a pure
// function of (spec, seed)) and keep the driver generic.  Scripts are built
// lazily at job start so that only the <= machine-width set of running jobs
// holds script memory.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cfs/types.hpp"

namespace charisma::workload {

using cfs::IoMode;
using cfs::Whence;
using util::MicroSec;

enum class OpKind : std::uint8_t {
  kOpen,     // path_index, flags, mode
  kRead,     // fd slot = path_index, bytes
  kWrite,    // fd slot = path_index, bytes
  kSeek,     // fd slot = path_index, offset, whence
  kClose,    // fd slot = path_index
  kUnlink,   // path_index
  kThink,    // think_time only: compute between I/O phases
  kBarrier,  // wait until every node of the job reaches its next barrier
  kEnd,      // sentinel: a workload::Source rank has no further operations
};

struct Op {
  OpKind kind = OpKind::kThink;
  std::int32_t path = -1;       // index into JobScripts::paths
  std::int64_t bytes = 0;       // read/write size
  std::int64_t offset = 0;      // seek target
  Whence whence = Whence::kSet;
  std::uint8_t flags = 0;       // open flags
  IoMode mode = IoMode::kIndependent;
  MicroSec think = 0;           // compute time before this op issues
};

struct NodeScript {
  std::vector<Op> ops;
};

/// Compiled job: one script per allocated node (index = rank within job).
struct JobScripts {
  std::vector<std::string> paths;   // job-relative path table
  std::vector<NodeScript> nodes;    // size == nodes allocated

  [[nodiscard]] std::size_t total_ops() const noexcept {
    std::size_t n = 0;
    for (const auto& s : nodes) n += s.ops.size();
    return n;
  }
};

/// The application archetypes of the synthetic NAS workload (DESIGN.md §2).
enum class Archetype : std::uint8_t {
  kBroadcastRead,    // every node reads a shared input whole
  kCfdSolver,        // interleaved burst read + per-node record outputs
  kSlabRead,         // each node single-reads its partition
  kCheckpointWrite,  // per-node big files in large chunks
  kSingleDump,       // per-node output in one write
  kRwUpdate,         // read-modify-write on a shared file
  kTempFile,         // scratch files deleted by the creator
  kPostprocess,      // single-node consecutive whole-file read
  kQuadTool,         // the popular 3-inputs-plus-summary utility (Table 1)
  kSharedPointer,    // the rare mode 1/2/3 users
  kStatusCheck,      // the periodic no-CFS-I/O machine monitor
  kSystem,           // untraced system programs (ls/cp/ftp)
};

[[nodiscard]] const char* to_string(Archetype a) noexcept;

/// Inverse of to_string; false when `name` matches no archetype (the replay
/// log reader surfaces that as a format error rather than guessing).
[[nodiscard]] bool archetype_from_string(std::string_view name,
                                         Archetype* out) noexcept;

/// Scale-free parameters an archetype instance was drawn with.  Field use
/// varies by archetype; see generator.cpp.
struct ArchetypeParams {
  std::int64_t file_bytes = 0;     // principal file size
  std::int64_t record_bytes = 0;   // small request size
  std::int64_t chunk_bytes = 0;    // large request size
  std::int32_t burst = 1;          // interleave burst length (records)
  std::int32_t snapshots = 1;      // output files per node
  std::int32_t phases = 1;         // compute/I/O phase count
  std::int32_t out_records = 0;    // records per output file
  std::uint8_t variant = 0;        // archetype-specific sub-behaviour
  bool open_extra_untouched = false;  // opens a file it never touches
  bool reads_restart = false;      // reads a per-node restart file first
  bool reads_bc = false;           // reads a per-node boundary-condition file
};

/// One job in the arrival stream.
struct JobSpec {
  cfs::JobId job = cfs::kNoJob;
  MicroSec arrival = 0;
  std::int32_t nodes = 1;        // power of two
  bool traced = true;            // linked against the instrumented library
  Archetype archetype = Archetype::kSystem;
  ArchetypeParams params;
  /// Pre-populated input files this job reads.  Shared inputs come first;
  /// for per-node restart files the last `nodes` entries map to ranks.
  std::vector<std::int32_t> input_files;
  std::uint64_t seed = 0;        // per-job RNG stream
  MicroSec mean_think = 50 * util::kMillisecond;
  MicroSec mean_phase_think = 50 * util::kSecond;
};

}  // namespace charisma::workload
