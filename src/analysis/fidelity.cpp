#include "analysis/fidelity.hpp"

#include <sstream>

#include "analysis/analyzers.hpp"
#include "analysis/paper.hpp"
#include "util/table.hpp"

namespace charisma::analysis {

namespace {

double table1_fraction(std::size_t bucket) {
  std::int64_t total = 0;
  for (const auto& row : paper::kTable1) total += row.jobs;
  return total > 0 ? static_cast<double>(paper::kTable1[bucket].jobs) /
                         static_cast<double>(total)
                   : 0.0;
}

}  // namespace

std::vector<FidelityCheck> check_paper_fidelity(
    const SessionStore& store, const trace::SortedTrace& trace,
    std::int64_t block_size, const CacheFigures* cache) {
  return check_paper_fidelity(store, analyze_request_sizes(trace),
                              block_size, cache);
}

std::vector<FidelityCheck> check_paper_fidelity(
    const SessionStore& store, const RequestSizeResult& request_sizes,
    std::int64_t block_size, const CacheFigures* cache) {
  std::vector<FidelityCheck> out;
  const auto add = [&](const char* figure, const char* name, double measured,
                       double expected, double tolerance) {
    out.push_back({figure, name, measured, expected, tolerance});
  };

  {  // Figure 1: machine utilisation profile.
    const auto r = analyze_job_concurrency(store);
    add("fig1", "idle_fraction", r.idle_fraction, paper::kIdleFraction, 0.15);
    add("fig1", "multiprogrammed_fraction", r.multiprogrammed_fraction,
        paper::kMultiprogrammedFraction, 0.20);
  }
  {  // Figure 2: job sizes.
    const auto r = analyze_node_counts(store);
    add("fig2", "single_node_job_fraction", r.single_node_job_fraction,
        static_cast<double>(paper::kSingleNodeJobs) /
            static_cast<double>(paper::kTotalJobs),
        0.15);
  }
  {  // Figure 4: request-size distribution anchors.
    const auto& r = request_sizes;
    add("fig4", "small_read_fraction", r.small_read_fraction,
        paper::kSmallReadFraction, 0.10);
    add("fig4", "small_read_data_fraction", r.small_read_data_fraction,
        paper::kSmallReadDataFraction, 0.10);
    // Writes are slightly smaller-skewed than the paper's: the generator
    // has no large sequential checkpoint tail, so the write bands carry a
    // little extra width.
    add("fig4", "small_write_fraction", r.small_write_fraction,
        paper::kSmallWriteFraction, 0.12);
    add("fig4", "small_write_data_fraction", r.small_write_data_fraction,
        paper::kSmallWriteDataFraction, 0.20);
  }
  {  // Figures 5/6: access-pattern regularity anchors.
    const auto r = analyze_sequentiality(store);
    add("fig6", "read_only_fully_consecutive", r.read_only.fully_consecutive,
        paper::kReadOnlyFullyConsecutive, 0.20);
    add("fig6", "write_only_fully_consecutive",
        r.write_only.fully_consecutive, paper::kWriteOnlyFullyConsecutive,
        0.20);
  }
  {  // Figure 7: sharing anchors.
    const auto r = analyze_sharing(store, block_size);
    add("fig7", "read_only_fully_byte_shared", r.read_only.fully_byte_shared,
        paper::kReadOnlyFullyByteShared, 0.25);
    add("fig7", "write_only_no_bytes_shared", r.write_only.no_bytes_shared,
        paper::kWriteOnlyNoBytesShared, 0.25);
    // Known gap: the synthetic workload's concurrently-open read-write
    // files share at block granularity but almost never overlap byte
    // ranges, so the byte-level anchor sits far from the paper's 50%.  The
    // wide band documents the gap instead of hiding the statistic.
    add("fig7", "read_write_fully_byte_shared",
        r.read_write.fully_byte_shared, paper::kReadWriteFullyByteShared,
        0.55);
    add("fig7", "read_write_fully_block_shared",
        r.read_write.fully_block_shared, paper::kReadWriteFullyBlockShared,
        0.30);
  }
  {  // Table 1: files opened per traced job.
    const auto r = analyze_files_per_job(store);
    static const char* const kNames[] = {
        "table1_1_file", "table1_2_files", "table1_3_files",
        "table1_4_files", "table1_5plus_files"};
    for (std::size_t b = 0; b < r.buckets.size(); ++b) {
      const double measured =
          r.traced_jobs_with_files > 0
              ? static_cast<double>(r.buckets[b]) /
                    static_cast<double>(r.traced_jobs_with_files)
              : 0.0;
      add("table1", kNames[b], measured, table1_fraction(b), 0.20);
    }
  }
  {  // Table 2: distinct interval sizes per file.
    const auto r = analyze_intervals(store);
    static const char* const kNames[] = {
        "table2_0_intervals", "table2_1_interval", "table2_2_intervals",
        "table2_3_intervals", "table2_4plus_intervals"};
    for (std::size_t b = 0; b < r.buckets.size(); ++b) {
      const double measured =
          r.total_files > 0 ? static_cast<double>(r.buckets[b]) /
                                  static_cast<double>(r.total_files)
                            : 0.0;
      add("table2", kNames[b], measured, paper::kTable2Percent[b] / 100.0,
          0.15);
    }
    add("table2", "one_interval_consecutive_share",
        r.one_interval_consecutive_share, paper::kOneIntervalConsecutiveShare,
        0.10);
  }
  {  // Table 3: distinct request sizes per file.
    const auto r = analyze_request_regularity(store);
    static const char* const kNames[] = {
        "table3_0_sizes", "table3_1_size", "table3_2_sizes", "table3_3_sizes",
        "table3_4plus_sizes"};
    for (std::size_t b = 0; b < r.buckets.size(); ++b) {
      const double measured =
          r.total_files > 0 ? static_cast<double>(r.buckets[b]) /
                                  static_cast<double>(r.total_files)
                            : 0.0;
      // The generator leans harder on two-sizes-per-file regularity than
      // the traced workload did, so table 3 gets the wider band.
      add("table3", kNames[b], measured, paper::kTable3Percent[b] / 100.0,
          0.20);
    }
  }
  {  // §4.2 file population.
    const auto r = analyze_file_population(store);
    add("sec4.2", "temporary_fraction", r.temporary_fraction,
        paper::kTemporaryOpenFraction, 0.05);
  }
  {  // §4.6 I/O modes.
    const auto r = analyze_mode_usage(store);
    add("sec4.6", "mode0_fraction", r.mode0_fraction, paper::kMode0Fraction,
        0.10);
  }
  if (cache != nullptr) {  // Figure 8: compute-node cache, 1 buffer/node.
    add("fig8", "jobs_above_hit_rate_75", cache->jobs_above_hit_rate_75,
        paper::kJobsAboveHitRate75, 0.25);
    add("fig8", "jobs_at_zero_hit_rate", cache->jobs_at_zero_hit_rate,
        paper::kJobsAtZeroHitRate, 0.25);
  }
  return out;
}

std::string render_fidelity(const std::vector<FidelityCheck>& checks) {
  util::Table t({"figure", "statistic", "measured", "paper", "delta", "band",
                 "verdict"});
  const auto fmt = [](double v) {
    std::ostringstream os;
    os.precision(4);
    os << v;
    return std::move(os).str();
  };
  std::size_t drifted = 0;
  for (const auto& c : checks) {
    if (!c.pass()) ++drifted;
    t.add_row({c.figure, c.name, fmt(c.measured), fmt(c.expected),
               fmt(c.delta()), "+-" + fmt(c.tolerance),
               c.pass() ? "PASS" : "DRIFT"});
  }
  std::ostringstream out;
  out << t.render() << checks.size() << " checks, " << drifted
      << " outside their band\n";
  return std::move(out).str();
}

}  // namespace charisma::analysis
