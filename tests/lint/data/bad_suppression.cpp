// Deliberately stale suppressions for the charisma-unused-suppression
// golden test.  Never compiled — only scanned.  Line numbers are
// load-bearing: the golden file pins every finding to its line.

long fine() {
  return 42;  // NOLINT(charisma-wallclock)
}

long genuinely_suppressed() {
  return time(nullptr);  // NOLINT(charisma-wallclock)
}

// NOLINTNEXTLINE(charisma-raw-random)
int also_fine() { return 7; }
