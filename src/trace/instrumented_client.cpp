#include "trace/instrumented_client.hpp"

namespace charisma::trace {

cfs::OpenResult InstrumentedClient::open(cfs::JobId job,
                                         const std::string& path,
                                         std::uint8_t flags,
                                         cfs::IoMode mode) {
  cfs::OpenResult r = client_->open(job, path, flags, mode);
  if (r.ok) {
    Record rec;
    rec.kind = EventKind::kOpen;
    rec.job = job;
    rec.node = client_->node();
    rec.file = r.file;
    rec.aux = pack_open_aux(flags, mode);
    rec.bytes = r.created ? 1 : 0;
    rec.mode = static_cast<std::uint8_t>(mode);
    emit(rec);
  }
  return r;
}

cfs::IoResult InstrumentedClient::read(cfs::Fd fd, std::int64_t bytes) {
  const cfs::FileId file = client_->file_of(fd);
  const cfs::JobId job = client_->job_of(fd);
  cfs::IoResult r = client_->read(fd, bytes);
  if (r.ok) {
    Record rec;
    rec.kind = EventKind::kRead;
    rec.job = job;
    rec.node = client_->node();
    rec.file = file;
    rec.offset = r.offset;
    rec.bytes = r.bytes;
    rec.aux = bytes;
    emit(rec);
  }
  return r;
}

cfs::IoResult InstrumentedClient::write(cfs::Fd fd, std::int64_t bytes) {
  const cfs::FileId file = client_->file_of(fd);
  const cfs::JobId job = client_->job_of(fd);
  cfs::IoResult r = client_->write(fd, bytes);
  if (r.ok) {
    Record rec;
    rec.kind = EventKind::kWrite;
    rec.job = job;
    rec.node = client_->node();
    rec.file = file;
    rec.offset = r.offset;
    rec.bytes = r.bytes;
    rec.aux = bytes;
    emit(rec);
  }
  return r;
}

std::optional<std::int64_t> InstrumentedClient::seek(cfs::Fd fd,
                                                     std::int64_t offset,
                                                     cfs::Whence whence) {
  const cfs::FileId file = client_->file_of(fd);
  const cfs::JobId job = client_->job_of(fd);
  const auto result = client_->seek(fd, offset, whence);
  if (result) {
    Record rec;
    rec.kind = EventKind::kSeek;
    rec.job = job;
    rec.node = client_->node();
    rec.file = file;
    rec.offset = *result;
    emit(rec);
  }
  return result;
}

std::optional<std::int64_t> InstrumentedClient::close(cfs::Fd fd) {
  const cfs::FileId file = client_->file_of(fd);
  const cfs::JobId job = client_->job_of(fd);
  const auto size = client_->close(fd);
  if (size) {
    Record rec;
    rec.kind = EventKind::kClose;
    rec.job = job;
    rec.node = client_->node();
    rec.file = file;
    rec.aux = *size;
    emit(rec);
  }
  return size;
}

bool InstrumentedClient::unlink(cfs::JobId job, const std::string& path) {
  // Resolve the id before the directory entry disappears.
  const auto file = client_->runtime().fs().lookup(path);
  const bool ok = client_->unlink(job, path);
  if (ok && file) {
    Record rec;
    rec.kind = EventKind::kDelete;
    rec.job = job;
    rec.node = client_->node();
    rec.file = *file;
    emit(rec);
  }
  return ok;
}

}  // namespace charisma::trace
