#include "core/study.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"

namespace charisma::core {
namespace {

TEST(Study, RunsEndToEnd) {
  const auto out = run_study_at_scale(0.02, 3);
  EXPECT_GT(out.records, 1000u);
  EXPECT_GT(out.total_ops, 1000u);
  EXPECT_GT(out.sim_end, 0);
  EXPECT_EQ(out.sorted.records.size(), out.raw.record_count());
  EXPECT_EQ(out.raw.header.compute_nodes, 128);
  EXPECT_EQ(out.raw.header.io_nodes, 10);
  EXPECT_FALSE(out.jobs.empty());
}

TEST(Study, DeterministicTraces) {
  const auto a = run_study_at_scale(0.02, 7);
  const auto b = run_study_at_scale(0.02, 7);
  ASSERT_EQ(a.sorted.records.size(), b.sorted.records.size());
  for (std::size_t i = 0; i < a.sorted.records.size(); ++i) {
    EXPECT_EQ(a.sorted.records[i].timestamp, b.sorted.records[i].timestamp);
    EXPECT_EQ(a.sorted.records[i].offset, b.sorted.records[i].offset);
    EXPECT_EQ(a.sorted.records[i].file, b.sorted.records[i].file);
  }
  EXPECT_EQ(a.sim_end, b.sim_end);
}

TEST(Study, DifferentSeedsDifferentTraces) {
  const auto a = run_study_at_scale(0.02, 1);
  const auto b = run_study_at_scale(0.02, 2);
  EXPECT_NE(a.sorted.records.size(), b.sorted.records.size());
}

TEST(Study, SortedTraceIsChronological) {
  const auto out = run_study_at_scale(0.02, 11);
  for (std::size_t i = 1; i < out.sorted.records.size(); ++i) {
    EXPECT_LE(out.sorted.records[i - 1].timestamp,
              out.sorted.records[i].timestamp);
  }
}

TEST(Study, InstrumentationPerturbationIsSmall) {
  const auto out = run_study_at_scale(0.05, 13);
  // §3.1: node buffering cuts collector messages by >90%.
  EXPECT_LT(out.collector_messages, out.records / 10);
  // §3.1: trace output stays well under 1% of total disk traffic... our
  // bar: under 2% even at small scales.
  EXPECT_LT(static_cast<double>(out.trace_bytes),
            0.02 * static_cast<double>(out.user_bytes_moved));
}

TEST(Study, FullReportMentionsEverySection) {
  const auto out = run_study_at_scale(0.02, 17);
  const std::string report = full_report(out);
  for (const char* section :
       {"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figures 5/6",
        "Figure 7", "Table 1", "Table 2", "Table 3", "S4.2", "S4.6",
        "Strided"}) {
    EXPECT_NE(report.find(section), std::string::npos) << section;
  }
}

TEST(Study, TraceSurvivesDiskRoundTrip) {
  const auto out = run_study_at_scale(0.02, 19);
  const std::string path = ::testing::TempDir() + "study_roundtrip.chtr";
  out.raw.write(path);
  const auto back = trace::TraceFile::read(path);
  EXPECT_EQ(back.record_count(), out.raw.record_count());
  const auto sorted = trace::postprocess(back);
  ASSERT_EQ(sorted.records.size(), out.sorted.records.size());
  for (std::size_t i = 0; i < sorted.records.size(); i += 97) {
    EXPECT_EQ(sorted.records[i].timestamp, out.sorted.records[i].timestamp);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace charisma::core
