file(REMOVE_RECURSE
  "CMakeFiles/charisma_util.dir/flags.cpp.o"
  "CMakeFiles/charisma_util.dir/flags.cpp.o.d"
  "CMakeFiles/charisma_util.dir/histogram.cpp.o"
  "CMakeFiles/charisma_util.dir/histogram.cpp.o.d"
  "CMakeFiles/charisma_util.dir/rng.cpp.o"
  "CMakeFiles/charisma_util.dir/rng.cpp.o.d"
  "CMakeFiles/charisma_util.dir/stats.cpp.o"
  "CMakeFiles/charisma_util.dir/stats.cpp.o.d"
  "CMakeFiles/charisma_util.dir/table.cpp.o"
  "CMakeFiles/charisma_util.dir/table.cpp.o.d"
  "CMakeFiles/charisma_util.dir/thread_pool.cpp.o"
  "CMakeFiles/charisma_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/charisma_util.dir/units.cpp.o"
  "CMakeFiles/charisma_util.dir/units.cpp.o.d"
  "libcharisma_util.a"
  "libcharisma_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
