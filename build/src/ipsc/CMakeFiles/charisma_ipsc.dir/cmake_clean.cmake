file(REMOVE_RECURSE
  "CMakeFiles/charisma_ipsc.dir/machine.cpp.o"
  "CMakeFiles/charisma_ipsc.dir/machine.cpp.o.d"
  "libcharisma_ipsc.a"
  "libcharisma_ipsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_ipsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
