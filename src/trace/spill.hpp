// Bounded-memory trace spilling (ROADMAP item 3).
//
// A spilled trace is an ordinary CHARISMA trace file written *incrementally*:
// the collector appends each flushed block to disk as it arrives and only the
// header plus a per-block stamp index stay resident.  Because the on-disk
// layout is exactly `TraceFile::write`'s, every existing reader — including
// the tolerant crash-recovery path — works on a spill file unchanged, and the
// streaming digest below is bit-identical to `TraceFile::digest()` on the
// materialized equivalent.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_file.hpp"

namespace charisma::trace {

/// Push-based consumer of the postprocessed (clock-corrected, merged) record
/// stream.  Sinks hold bounded per-file/per-job state, never the full trace.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void on_record(const Record& record) = 0;
};

/// One block's stamps and payload location; the in-memory index entry for a
/// block whose records live on disk.  24 bytes of stamps + a 12-byte locator
/// per block instead of the records themselves.
struct SpillBlock {
  NodeId node = 0;
  MicroSec sent_local = 0;   // node clock when the buffer was sent
  MicroSec recv_global = 0;  // collector clock when it arrived
  std::uint32_t count = 0;   // records in this block
  std::int64_t payload_offset = 0;  // file offset of the first record's bytes
};

/// A trace resident on disk: header and block index in memory, record
/// payloads read back one block at a time.
class SpilledTrace {
 public:
  TraceHeader header;
  std::vector<SpillBlock> blocks;

  SpilledTrace() = default;
  SpilledTrace(SpilledTrace&& other) noexcept;
  SpilledTrace& operator=(SpilledTrace&& other) noexcept;
  SpilledTrace(const SpilledTrace&) = delete;
  SpilledTrace& operator=(const SpilledTrace&) = delete;
  ~SpilledTrace();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t record_count() const noexcept;

  /// Streams the backing file once (sequentially, one block's payload at a
  /// time).  Bit-identical to `TraceFile::digest()` on the same trace.
  [[nodiscard]] std::uint64_t digest() const;

  /// Decodes block `index`'s records into `out` (cleared first) using the
  /// caller's open stream — callers reuse both across blocks so the merge
  /// holds one block per node, not the trace.
  void read_block(std::size_t index, std::ifstream& in,
                  std::vector<Record>& out) const;

  /// Opens `path` for streaming (seekable stream positioned by read_block).
  [[nodiscard]] std::ifstream open_payload() const;

  /// Indexes an existing trace/spill file without loading record payloads.
  /// Tolerant mode honours the tolerant-reader contract: it scans block
  /// frames to end-of-file (so a crash-truncated final block — or a spill
  /// whose header count was never patched — loses only the cut block) and
  /// reports via `truncated` instead of throwing.
  [[nodiscard]] static SpilledTrace open(const std::string& path,
                                         bool tolerant = false,
                                         bool* truncated = nullptr);

  /// Deletes the backing file now (also done by ~SpilledTrace when owned).
  void remove_backing_file() noexcept;

 private:
  friend class SpillWriter;
  std::string path_;
  bool owns_file_ = false;  // temp spill: unlink on destruction
};

/// Incremental writer producing `TraceFile::write`-format bytes.  The header
/// (minus trace_end) must be final at construction — its bytes, and the label
/// in particular, fix the patch offsets; trace_end and the block count are
/// back-patched by finish().
class SpillWriter {
 public:
  /// Creates/truncates `path` and writes the header with placeholder
  /// trace_end/block-count fields.  Throws std::runtime_error on I/O failure.
  SpillWriter(std::string path, const TraceHeader& header);

  /// Appends one block's frame; called in collector flush order.
  void append(const TraceBlock& block);

  /// Patches trace_end and the block count, closes the file, and returns the
  /// index as an owning SpilledTrace (the file is deleted with it).
  [[nodiscard]] SpilledTrace finish(MicroSec trace_end);

  [[nodiscard]] std::uint64_t blocks_written() const noexcept {
    return static_cast<std::uint64_t>(index_.size());
  }

 private:
  std::string path_;
  TraceHeader header_;
  std::ofstream out_;
  std::vector<SpillBlock> index_;
  std::int64_t trace_end_offset_ = 0;
  std::int64_t block_count_offset_ = 0;
  std::vector<std::uint8_t> encode_buf_;
  bool finished_ = false;
};

}  // namespace charisma::trace
