#include "sim/engine.hpp"

#include "util/check.hpp"

namespace charisma::sim {

void Engine::schedule_at(MicroSec at, Callback fn) {
  util::check(at >= now_, "cannot schedule an event in the past");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Engine::schedule_in(MicroSec delay, Callback fn) {
  util::check(delay >= 0, "negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the callback must be moved out before pop.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++dispatched_;
  ev.fn();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(MicroSec deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) step();
  if (now_ < deadline) now_ = deadline;
}

}  // namespace charisma::sim
