// End-to-end CFS client tests on a tiny simulated machine.
#include "cfs/client.hpp"

#include <gtest/gtest.h>

namespace charisma::cfs {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  ClientTest()
      : rng_(1),
        machine_(engine_, ipsc::MachineConfig::tiny(), rng_),
        runtime_(machine_) {}

  sim::Engine engine_;
  util::Rng rng_;
  ipsc::Machine machine_;
  Runtime runtime_;
};

TEST_F(ClientTest, OpenWriteReadRoundTrip) {
  Client writer(runtime_, 0);
  const auto open = writer.open(1, "data.out", kWrite | kCreate,
                                IoMode::kIndependent);
  ASSERT_TRUE(open.ok) << open.error;
  EXPECT_GE(open.fd, 3);
  EXPECT_TRUE(open.created);

  const auto w = writer.write(open.fd, 10000);
  ASSERT_TRUE(w.ok) << w.error;
  EXPECT_EQ(w.offset, 0);
  EXPECT_EQ(w.bytes, 10000);
  EXPECT_TRUE(w.extended_file);
  EXPECT_GT(w.completed_at, engine_.now());

  EXPECT_EQ(writer.close(open.fd), std::optional<std::int64_t>(10000));

  Client reader(runtime_, 1);
  const auto ropen = reader.open(2, "data.out", kRead, IoMode::kIndependent);
  ASSERT_TRUE(ropen.ok);
  const auto r = reader.read(ropen.fd, 4000);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.offset, 0);
  EXPECT_EQ(r.bytes, 4000);
  const auto r2 = reader.read(ropen.fd, 100000);
  EXPECT_EQ(r2.bytes, 6000);  // clipped at EOF
}

TEST_F(ClientTest, BadFdIsAnError) {
  Client c(runtime_, 0);
  EXPECT_FALSE(c.read(42, 10).ok);
  EXPECT_FALSE(c.write(42, 10).ok);
  EXPECT_EQ(c.seek(42, 0, Whence::kSet), std::nullopt);
  EXPECT_EQ(c.close(42), std::nullopt);
  EXPECT_EQ(c.file_of(42), kNoFile);
  EXPECT_EQ(c.job_of(42), kNoJob);
}

TEST_F(ClientTest, FailedOpsReportCallTimeAndZeroBytes) {
  // The error contract (client.hpp): a failed operation consumes no
  // simulated time — completed_at is the call time, never a stale value
  // from an earlier operation and never a future completion.
  Client c(runtime_, 0);
  const auto open = c.open(1, "f", kRead | kWrite | kCreate,
                           IoMode::kIndependent);
  ASSERT_TRUE(open.ok);
  const auto w = c.write(open.fd, 50000);
  ASSERT_TRUE(w.ok);
  ASSERT_GT(w.completed_at, engine_.now());
  // Move simulated time off zero so a zeroed/stale timestamp is visible.
  engine_.run_until(w.completed_at + 1000);
  const auto t = engine_.now();
  ASSERT_GT(t, 0);

  for (const IoResult& r :
       {c.read(999, 10), c.write(999, 10), c.read_strided(999, 100, 10, 2),
        c.read_strided(open.fd, 0, 10, 2)}) {
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.bytes, 0);
    EXPECT_EQ(r.completed_at, t);
  }
}

TEST_F(ClientTest, FailedReservationReportsCallTime) {
  // Reservation-level failure (not just a bad descriptor): a write-only
  // file rejects reads after the fd lookup succeeded.
  Client c(runtime_, 0);
  const auto open = c.open(1, "wo", kWrite | kCreate, IoMode::kIndependent);
  ASSERT_TRUE(open.ok);
  engine_.run_until(7777);
  const auto r = c.read(open.fd, 10);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.bytes, 0);
  EXPECT_EQ(r.completed_at, engine_.now());
  const auto rs = c.read_strided(open.fd, 100, 100, 2);
  EXPECT_FALSE(rs.ok);
  EXPECT_EQ(rs.bytes, 0);
  EXPECT_EQ(rs.completed_at, engine_.now());
}

TEST_F(ClientTest, SeekRepositionsReads) {
  Client c(runtime_, 0);
  const auto open =
      c.open(1, "f", kRead | kWrite | kCreate, IoMode::kIndependent);
  ASSERT_TRUE(open.ok);
  (void)c.write(open.fd, 8192);
  EXPECT_EQ(c.seek(open.fd, 1000, Whence::kSet), 1000);
  const auto r = c.read(open.fd, 100);
  EXPECT_EQ(r.offset, 1000);
}

TEST_F(ClientTest, LargerTransfersTakeLonger) {
  Client c(runtime_, 0);
  const auto open = c.open(1, "f", kWrite | kCreate, IoMode::kIndependent);
  const auto small = c.write(open.fd, 512);
  const auto big = c.write(open.fd, 512 * 1024);
  EXPECT_GT(big.completed_at - small.completed_at,
            small.completed_at - engine_.now());
}

TEST_F(ClientTest, IoMessagesCountBlocksTouched) {
  Client c(runtime_, 0);
  const auto open = c.open(1, "f", kWrite | kCreate, IoMode::kIndependent);
  EXPECT_EQ(c.io_messages(), 0u);
  (void)c.write(open.fd, util::kBlockSize * 3);  // 3 blocks = 3 messages
  EXPECT_EQ(c.io_messages(), 3u);
  (void)c.write(open.fd, 100);
  EXPECT_EQ(c.io_messages(), 4u);
}

TEST_F(ClientTest, ZeroByteOpsSucceedWithoutTraffic) {
  Client c(runtime_, 0);
  const auto open = c.open(1, "f", kRead | kWrite | kCreate,
                           IoMode::kIndependent);
  const auto w = c.write(open.fd, 0);
  EXPECT_TRUE(w.ok);
  EXPECT_EQ(w.bytes, 0);
  EXPECT_EQ(c.io_messages(), 0u);
}

TEST_F(ClientTest, TwoNodesShareAFileUnderModeZero) {
  Client a(runtime_, 0), b(runtime_, 1);
  const auto oa = a.open(1, "shared", kWrite | kCreate, IoMode::kIndependent);
  const auto ob = b.open(1, "shared", kWrite, IoMode::kIndependent);
  ASSERT_TRUE(oa.ok && ob.ok);
  EXPECT_EQ(oa.file, ob.file);
  const auto wa = a.write(oa.fd, 100);
  const auto wb = b.write(ob.fd, 100);
  // Independent pointers: both wrote at offset 0.
  EXPECT_EQ(wa.offset, 0);
  EXPECT_EQ(wb.offset, 0);
}

TEST_F(ClientTest, UnlinkRemovesFileAndInvalidatesCaches) {
  Client c(runtime_, 0);
  const auto open = c.open(1, "victim", kWrite | kCreate, IoMode::kIndependent);
  (void)c.write(open.fd, 100);
  (void)c.close(open.fd);
  EXPECT_TRUE(c.unlink(1, "victim"));
  EXPECT_FALSE(c.unlink(1, "victim"));
  EXPECT_FALSE(c.open(2, "victim", kRead, IoMode::kIndependent).ok);
}

TEST_F(ClientTest, OpenFilesTracksHandleTable) {
  Client c(runtime_, 0);
  const auto o1 = c.open(1, "a", kWrite | kCreate, IoMode::kIndependent);
  const auto o2 = c.open(1, "b", kWrite | kCreate, IoMode::kIndependent);
  EXPECT_EQ(c.open_files(), 2u);
  EXPECT_EQ(c.file_of(o1.fd), o1.file);
  EXPECT_EQ(c.job_of(o2.fd), 1);
  (void)c.close(o1.fd);
  EXPECT_EQ(c.open_files(), 1u);
}

TEST_F(ClientTest, DiskTrafficLandsOnAllIoNodes) {
  Client c(runtime_, 0);
  const auto open = c.open(1, "big", kWrite | kCreate, IoMode::kIndependent);
  (void)c.write(open.fd, 64 * util::kKiB);  // 16 blocks over 2 I/O nodes
  EXPECT_GT(machine_.disk(0).bytes_moved(), 0);
  EXPECT_GT(machine_.disk(1).bytes_moved(), 0);
}

}  // namespace
}  // namespace charisma::cfs
