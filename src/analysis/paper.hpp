// The published values from Kotz & Nieuwejaar (SC '94), used by the bench
// binaries to print paper-vs-measured comparisons and by EXPERIMENTS.md.
// Nothing in the simulator or the analyzers reads these.
#pragma once

#include <array>
#include <cstdint>

namespace charisma::analysis::paper {

// §3.1 job population.
inline constexpr int kTotalJobs = 3016;
inline constexpr int kSingleNodeJobs = 2237;
inline constexpr int kMultiNodeJobs = 779;
inline constexpr int kTracedMultiJobs = 429;
inline constexpr int kTracedSingleJobs = 41;
inline constexpr double kTraceHours = 156.0;

// Figure 1.
inline constexpr double kIdleFraction = 0.27;        // "more than a quarter"
inline constexpr double kMultiprogrammedFraction = 0.35;
inline constexpr int kMaxConcurrentJobs = 8;

// §4.2 file population.
inline constexpr int kFilesOpened = 64000;
inline constexpr int kWriteOnlyFiles = 44500;
inline constexpr int kReadOnlyFiles = 14500;
inline constexpr int kReadWriteFiles = 2300;   // "less than 2300"
inline constexpr int kUntouchedFiles = 2500;   // "nearly 2500"
inline constexpr double kTemporaryOpenFraction = 0.0061;
inline constexpr double kMeanBytesWrittenPerFile = 1.2e6;
inline constexpr double kMeanBytesReadPerFile = 3.3e6;

// Figure 4.
inline constexpr double kSmallReadFraction = 0.961;      // reads < 4000 B
inline constexpr double kSmallReadDataFraction = 0.020;
inline constexpr double kSmallWriteFraction = 0.894;
inline constexpr double kSmallWriteDataFraction = 0.03;
inline constexpr std::int64_t kSmallRequestThreshold = 4000;

// Figures 5/6.
inline constexpr double kWriteOnlyFullyConsecutive = 0.86;
inline constexpr double kReadOnlyFullyConsecutive = 0.29;

// Figure 7.
inline constexpr double kReadOnlyFullyByteShared = 0.70;
inline constexpr double kWriteOnlyNoBytesShared = 0.90;
inline constexpr double kReadWriteFullyByteShared = 0.50;
inline constexpr double kReadWriteFullyBlockShared = 0.93;

// Table 1: files opened per traced job.
struct FilesPerJobRow {
  const char* bucket;
  int jobs;
};
inline constexpr std::array<FilesPerJobRow, 5> kTable1 = {{
    {"1", 71}, {"2", 15}, {"3", 24}, {"4", 120}, {"5+", 240},
}};

// Table 2: distinct interval sizes per file (percent of files).
inline constexpr std::array<double, 5> kTable2Percent = {36.5, 58.2, 4.0,
                                                         0.2, 1.0};
inline constexpr double kOneIntervalConsecutiveShare = 0.99;

// Table 3: distinct request sizes per file (percent of files).
inline constexpr std::array<double, 5> kTable3Percent = {3.9, 40.0, 51.4,
                                                         3.9, 0.8};

// §4.6 mode usage.
inline constexpr double kMode0Fraction = 0.99;

// Figure 8 (compute-node cache).
inline constexpr double kJobsAboveHitRate75 = 0.40;
inline constexpr double kJobsAtZeroHitRate = 0.30;

// Figure 9 (I/O-node cache).
inline constexpr int kLruBuffersFor90 = 4000;
inline constexpr int kFifoBuffersFor90 = 20000;

// §4.8 combined simulation.
inline constexpr double kCombinedHitRateDrop = 0.03;

// §3.1 instrumentation.
inline constexpr double kMessageReduction = 0.90;  // ">90%" fewer messages
inline constexpr double kTraceTrafficShare = 0.01;  // "<1% of total traffic"

}  // namespace charisma::analysis::paper
