#include "cache/simulators.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace charisma::cache {
namespace {

using trace::EventKind;

trace::Record data(EventKind kind, cfs::JobId job, cfs::NodeId node,
                   cfs::FileId file, std::int64_t offset, std::int64_t bytes) {
  trace::Record r;
  r.kind = kind;
  r.job = job;
  r.node = node;
  r.file = file;
  r.offset = offset;
  r.bytes = bytes;
  return r;
}

std::set<SessionKey> ro_for(cfs::JobId job, std::initializer_list<cfs::FileId> files) {
  std::set<SessionKey> out;
  for (auto f : files) out.emplace(job, f);
  return out;
}

TEST(ComputeCacheSim, ConsecutiveSmallReadsHitAfterFirstBlockTouch) {
  trace::SortedTrace t;
  // 8 reads of 1024 bytes: blocks 0,0,0,0,1,1,1,1 -> 6 of 8 full hits.
  for (int i = 0; i < 8; ++i) {
    t.records.push_back(data(EventKind::kRead, 1, 0, 1, i * 1024, 1024));
  }
  const auto r = simulate_compute_cache(t, ro_for(1, {1}), {});
  EXPECT_EQ(r.reads, 8u);
  EXPECT_EQ(r.hits, 6u);
  ASSERT_EQ(r.job_hit_rates.size(), 1u);
  EXPECT_DOUBLE_EQ(r.job_hit_rates[0], 0.75);
}

TEST(ComputeCacheSim, NonReadOnlyFilesAreIgnored) {
  trace::SortedTrace t;
  for (int i = 0; i < 4; ++i) {
    t.records.push_back(data(EventKind::kRead, 1, 0, 1, i * 100, 100));
  }
  const auto r = simulate_compute_cache(t, {}, {});  // nothing read-only
  EXPECT_EQ(r.reads, 0u);
  EXPECT_TRUE(r.job_hit_rates.empty());
}

TEST(ComputeCacheSim, WritesNeverCountAsReads) {
  trace::SortedTrace t;
  t.records.push_back(data(EventKind::kWrite, 1, 0, 1, 0, 100));
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 100, 100));
  const auto r = simulate_compute_cache(t, ro_for(1, {1}), {});
  EXPECT_EQ(r.reads, 1u);
}

TEST(ComputeCacheSim, LargeReadsSpanningBlocksMiss) {
  trace::SortedTrace t;
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 64 * 1024));
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 64 * 1024));
  ComputeCacheConfig cfg;
  cfg.buffers_per_node = 1;
  const auto one = simulate_compute_cache(t, ro_for(1, {1}), cfg);
  EXPECT_EQ(one.hits, 0u);  // one buffer can never hold 16 blocks
  cfg.buffers_per_node = 32;
  const auto many = simulate_compute_cache(t, ro_for(1, {1}), cfg);
  EXPECT_EQ(many.hits, 1u);  // second pass fully cached
}

TEST(ComputeCacheSim, CachesArePerNodeAndPerJob) {
  trace::SortedTrace t;
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 100));
  t.records.push_back(data(EventKind::kRead, 1, 1, 1, 0, 100));  // other node
  t.records.push_back(data(EventKind::kRead, 2, 0, 1, 0, 100));  // other job
  const auto r = simulate_compute_cache(
      t, {{1, 1}, {2, 1}}, {});
  EXPECT_EQ(r.hits, 0u);  // no cross-node or cross-job hits
}

TEST(ComputeCacheSim, FractionsComputedOverJobs) {
  trace::SortedTrace t;
  // Job 1: 100% hit rate after warmup (9/10); job 2: all misses.
  for (int i = 0; i < 10; ++i) {
    t.records.push_back(data(EventKind::kRead, 1, 0, 1, i * 100, 100));
  }
  for (int i = 0; i < 10; ++i) {
    t.records.push_back(
        data(EventKind::kRead, 2, 0, 2, i * 100000, 100));
  }
  const auto r = simulate_compute_cache(t, {{1, 1}, {2, 2}}, {});
  EXPECT_DOUBLE_EQ(r.fraction_jobs_zero, 0.5);
  EXPECT_DOUBLE_EQ(r.fraction_jobs_above_75, 0.5);
}

// ---- I/O-node simulation ---------------------------------------------------

TEST(IoNodeSim, RequestHitNeedsEveryBlockResident) {
  trace::SortedTrace t;
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 8192));   // blocks 0,1
  t.records.push_back(data(EventKind::kRead, 1, 1, 1, 0, 4096));   // block 0: hit
  t.records.push_back(data(EventKind::kRead, 1, 2, 1, 4096, 8192));  // 1,2: miss
  IoNodeSimConfig cfg;
  cfg.io_nodes = 2;
  cfg.total_buffers = 8;
  const auto r = simulate_io_cache(t, {}, cfg);
  EXPECT_EQ(r.requests, 3u);
  EXPECT_EQ(r.request_hits, 1u);
  EXPECT_EQ(r.block_accesses, 2u + 1u + 2u);
  EXPECT_EQ(r.block_hits, 2u);  // block 0 once, block 1 once
}

TEST(IoNodeSim, BlocksMapToIoNodesRoundRobin) {
  trace::SortedTrace t;
  // Touch block 0 then block 2: with 2 I/O nodes both land on node 0's
  // cache; with capacity 1 per node the second evicts the first.
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 100));
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 2 * 4096, 100));
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 100));
  IoNodeSimConfig cfg;
  cfg.io_nodes = 2;
  cfg.total_buffers = 2;  // one buffer per I/O node
  const auto r = simulate_io_cache(t, {}, cfg);
  EXPECT_EQ(r.request_hits, 0u);  // block 0 was evicted by block 2
  // Same pattern but block 1 (other I/O node) in between: no interference.
  trace::SortedTrace t2;
  t2.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 100));
  t2.records.push_back(data(EventKind::kRead, 1, 0, 1, 4096, 100));
  t2.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 100));
  const auto r2 = simulate_io_cache(t2, {}, cfg);
  EXPECT_EQ(r2.request_hits, 1u);
}

TEST(IoNodeSim, WritesPopulateTheCache) {
  trace::SortedTrace t;
  t.records.push_back(data(EventKind::kWrite, 1, 0, 1, 0, 1000));
  t.records.push_back(data(EventKind::kRead, 1, 1, 1, 0, 1000));
  IoNodeSimConfig cfg;
  cfg.io_nodes = 1;
  cfg.total_buffers = 10;
  const auto r = simulate_io_cache(t, {}, cfg);
  EXPECT_EQ(r.request_hits, 1u);
}

TEST(IoNodeSim, FifoNeedsMoreBuffersThanLruOnReReference) {
  // Hot block kept alive by repeated touches while a stream passes.
  trace::SortedTrace t;
  for (int i = 0; i < 200; ++i) {
    t.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 100));
    t.records.push_back(
        data(EventKind::kRead, 1, 1, 2, i * 4096, 100));
  }
  IoNodeSimConfig cfg;
  cfg.io_nodes = 1;
  cfg.total_buffers = 8;
  cfg.policy = Policy::kLru;
  const auto lru = simulate_io_cache(t, {}, cfg);
  cfg.policy = Policy::kFifo;
  const auto fifo = simulate_io_cache(t, {}, cfg);
  EXPECT_GT(lru.request_hits, fifo.request_hits);
}

TEST(IoNodeSim, CombinedComputeCachesFilterIntraprocessHits) {
  trace::SortedTrace t;
  // One node streams small consecutive reads: most requests are absorbed
  // by a single front buffer.
  for (int i = 0; i < 32; ++i) {
    t.records.push_back(data(EventKind::kRead, 1, 0, 1, i * 512, 512));
  }
  IoNodeSimConfig cfg;
  cfg.io_nodes = 1;
  cfg.total_buffers = 16;
  const auto without = simulate_io_cache(t, ro_for(1, {1}), cfg);
  cfg.compute_buffers_per_node = 1;
  const auto with = simulate_io_cache(t, ro_for(1, {1}), cfg);
  EXPECT_EQ(without.filtered_by_compute, 0u);
  EXPECT_GT(with.filtered_by_compute, 20u);
  EXPECT_LT(with.requests, without.requests);
}

TEST(IoNodeSim, CombinedLeavesInterprocessLocality) {
  trace::SortedTrace t;
  // Two nodes alternate on the same blocks: the front caches miss (each
  // node sees each block for the first time... then again), but the I/O
  // node cache serves the second node.
  for (int i = 0; i < 16; ++i) {
    t.records.push_back(data(EventKind::kRead, 1, 0, 1, i * 4096, 4096));
    t.records.push_back(data(EventKind::kRead, 1, 1, 1, i * 4096, 4096));
  }
  IoNodeSimConfig cfg;
  cfg.io_nodes = 1;
  cfg.total_buffers = 64;
  cfg.compute_buffers_per_node = 1;
  const auto r = simulate_io_cache(t, ro_for(1, {1}), cfg);
  // Node 1's requests all hit at the I/O node.
  EXPECT_GE(r.request_hits, 16u);
}

TEST(IoNodeSim, EmptyTrace) {
  trace::SortedTrace t;
  const auto r = simulate_io_cache(t, {}, {});
  EXPECT_EQ(r.requests, 0u);
  EXPECT_EQ(r.hit_rate, 0.0);
  EXPECT_FALSE(r.describe().empty());
}

class IoNodeCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(IoNodeCountSweep, HitRateInsensitiveToIoNodeSplit) {
  // The paper: "It made little difference whether the buffers were focused
  // on a few I/O nodes or spread over many."  With a shared-stream workload
  // the split only changes which cache holds which block.
  trace::SortedTrace t;
  util::Rng rng(5);
  for (int i = 0; i < 4000; ++i) {
    const auto node = static_cast<cfs::NodeId>(rng.uniform(8));
    const auto block = static_cast<std::int64_t>(rng.uniform(64));
    t.records.push_back(
        data(EventKind::kRead, 1, node, 1, block * 4096, 512));
  }
  IoNodeSimConfig cfg;
  cfg.total_buffers = 200;
  cfg.io_nodes = GetParam();
  const auto r = simulate_io_cache(t, {}, cfg);
  // 64 hot blocks against 200 buffers: nearly everything hits, regardless
  // of how the buffers are split.
  EXPECT_GT(r.hit_rate, 0.9);
}

INSTANTIATE_TEST_SUITE_P(Splits, IoNodeCountSweep,
                         ::testing::Values(1, 2, 5, 10, 20));

}  // namespace
}  // namespace charisma::cache
