// Host-time stopwatch for I/O-path instrumentation.
//
// The streaming spill/merge paths report how much host wall time they spend
// blocked in write(2)/read(2) (perf_study's spill_write_ms / spill_read_ms /
// sink_ms fields).  That is a measurement of the *host*, never simulation
// input — simulated time comes exclusively from sim::Engine::now().  This
// header is the one audited wall-clock source inside src/; everything else
// that needs host time (bench/, tools/) carries its own audited NOLINT.
#pragma once

#include <chrono>

namespace charisma::util {

// Instrumentation only; see the header comment for the audit rationale.
using HostClock = std::chrono::steady_clock;  // NOLINT(charisma-wallclock)

/// Started (or restarted) explicitly; elapsed_ms() reads without stopping,
/// so one stopwatch can bracket many timed sections via restart().
class Stopwatch {
 public:
  Stopwatch() : start_(HostClock::now()) {}

  void restart() noexcept { start_ = HostClock::now(); }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return std::chrono::duration<double, std::milli>(HostClock::now() -
                                                     start_)
        .count();
  }

 private:
  HostClock::time_point start_;
};

}  // namespace charisma::util
