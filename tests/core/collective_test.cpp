#include "core/collective.hpp"

#include <gtest/gtest.h>

namespace charisma::core {
namespace {

using trace::EventKind;

trace::Record block_read(cfs::NodeId node, cfs::FileId file,
                         std::int64_t block) {
  trace::Record r;
  r.kind = EventKind::kRead;
  r.job = 1;
  r.node = node;
  r.file = file;
  r.offset = block * 4096;
  r.bytes = 4096;
  return r;
}

CollectiveConfig one_disk() {
  CollectiveConfig cfg;
  cfg.io_nodes = 1;
  cfg.min_blocks = 4;
  return cfg;
}

TEST(Collective, SortedAccessIsNeverSlower) {
  // Nodes interleave out of order: 0, 8, 1, 9, 2, 10 ...
  trace::SortedTrace t;
  for (int i = 0; i < 8; ++i) {
    t.records.push_back(block_read(0, 1, i));
    t.records.push_back(block_read(1, 1, i + 8));
  }
  const auto s = analyze_disk_directed(t, one_disk());
  EXPECT_EQ(s.sessions, 1u);
  EXPECT_LE(s.disk_time_directed, s.disk_time_arrival);
  EXPECT_LT(s.discontiguities_directed, s.discontiguities_arrival);
  EXPECT_GT(s.time_reduction(), 0.0);
}

TEST(Collective, AlreadySequentialGainsNothing) {
  trace::SortedTrace t;
  for (int i = 0; i < 16; ++i) t.records.push_back(block_read(0, 1, i));
  const auto s = analyze_disk_directed(t, one_disk());
  EXPECT_EQ(s.disk_time_directed, s.disk_time_arrival);
  EXPECT_DOUBLE_EQ(s.time_reduction(), 0.0);
}

TEST(Collective, SmallSessionsAreSkipped) {
  trace::SortedTrace t;
  t.records.push_back(block_read(0, 1, 5));
  t.records.push_back(block_read(0, 1, 1));
  const auto s = analyze_disk_directed(t, one_disk());
  EXPECT_EQ(s.sessions, 0u);
  EXPECT_EQ(s.block_accesses, 0u);
}

TEST(Collective, StreamsAreSplitPerIoNode) {
  // With 2 I/O nodes, even/odd blocks go to different disks; each disk's
  // stream of an in-order scan stays in order.
  trace::SortedTrace t;
  for (int i = 0; i < 16; ++i) t.records.push_back(block_read(0, 1, i));
  CollectiveConfig cfg;
  cfg.io_nodes = 2;
  cfg.min_blocks = 4;
  const auto s = analyze_disk_directed(t, cfg);
  EXPECT_DOUBLE_EQ(s.time_reduction(), 0.0);
}

TEST(Collective, RenderMentionsSavings) {
  trace::SortedTrace t;
  for (int i = 15; i >= 0; --i) t.records.push_back(block_read(0, 1, i));
  const auto s = analyze_disk_directed(t, one_disk());
  EXPECT_NE(s.render().find("disk-directed"), std::string::npos);
  EXPECT_GT(s.time_reduction(), 0.0);  // reverse order sorted helps
}

}  // namespace
}  // namespace charisma::core
