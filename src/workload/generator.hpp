// Synthetic production-workload generator.
//
// Produces the arrival stream of JobSpecs substituting for the NASA Ames
// production mix, plus the pool of pre-existing input files jobs read
// (files created before tracing started, as in the paper's environment).
// Scripts are compiled per job, lazily, by build_scripts().
//
// Calibration notes (how archetypes map to paper findings) live in
// generator.cpp next to each builder; DESIGN.md §4 lists the targets.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/config.hpp"
#include "workload/script.hpp"

namespace charisma::workload {

/// A file that exists before tracing begins.
struct PrePopFile {
  std::string path;
  std::int64_t bytes = 0;
};

struct GeneratedWorkload {
  WorkloadConfig config;
  std::vector<PrePopFile> inputs;
  std::vector<JobSpec> jobs;  // sorted by arrival time
  util::MicroSec window = 0;  // tracing window length

  [[nodiscard]] std::size_t job_count() const noexcept { return jobs.size(); }
};

/// Draws the whole workload.  Deterministic in (config.seed, config).
[[nodiscard]] GeneratedWorkload generate(const WorkloadConfig& config);

/// Compiles a job into per-node scripts.  Deterministic in spec.seed.
[[nodiscard]] JobScripts build_scripts(const JobSpec& spec,
                                       const GeneratedWorkload& workload);

}  // namespace charisma::workload
