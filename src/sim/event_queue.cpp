#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/check.hpp"

namespace charisma::sim {

namespace {

/// Orders events ascending by (at, seq) for the in-bucket sorted runs.
struct Earlier {
  bool operator()(const std::pair<MicroSec, std::uint64_t>& key,
                  const auto& ev) const noexcept {
    return key.first != ev.at ? key.first < ev.at : key.second < ev.seq;
  }
};

}  // namespace

// ---- CalendarQueue ---------------------------------------------------------

void CalendarQueue::insert_in_window(Event&& ev) {
  const auto idx = static_cast<std::size_t>((ev.at - window_start_) >>
                                            kBucketShift);
  DCHECK(idx < kBucketCount, "bucket index ", idx, " out of range");
  Bucket& b = buckets_[idx];
  if (b.head >= b.events.size()) {
    occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  }
  // Keep [head, end) sorted by (at, seq).  seq grows monotonically, so the
  // dominant schedule pattern (same or later timestamps) appends at the
  // end; test for that with one compare before paying for upper_bound.
  if (b.events.empty() || !Earlier{}(std::make_pair(ev.at, ev.seq),
                                     b.events.back())) {
    b.events.push_back(std::move(ev));
  } else {
    const auto pos = std::upper_bound(
        b.events.begin() + static_cast<std::ptrdiff_t>(b.head),
        b.events.end(), std::make_pair(ev.at, ev.seq), Earlier{});
    b.events.insert(pos, std::move(ev));
  }
  ++in_window_;
  // A peek may already have advanced the cursor past this bucket; pull it
  // back so the new event is not skipped.
  cursor_ = std::min(cursor_, idx);
}

void CalendarQueue::push(Event&& ev) {
  if (ev.at < window_start_ + kSpan) {
    // The engine guarantees ev.at >= now() >= window_start_ (in the sharded
    // coordinator, staged events land at or beyond the horizon that drained
    // the window below them).
    insert_in_window(std::move(ev));
  } else {
    overflow_.push_back(std::move(ev));
    std::push_heap(overflow_.begin(), overflow_.end(), EventAfter{});
  }
}

void CalendarQueue::migrate_overflow() {
  DCHECK(in_window_ == 0 && !overflow_.empty(),
         "migration needs an empty window and a populated overflow band");
  // Rebase the window onto the earliest far event.  The caller pops that
  // event immediately, so simulated time catches up to window_start_ before
  // any schedule_at can target the gap below it.
  window_start_ =
      (overflow_.front().at >> kBucketShift) << kBucketShift;
  cursor_ = 0;
  const MicroSec window_end = window_start_ + kSpan;
  while (!overflow_.empty() && overflow_.front().at < window_end) {
    std::pop_heap(overflow_.begin(), overflow_.end(), EventAfter{});
    insert_in_window(std::move(overflow_.back()));
    overflow_.pop_back();
  }
}

std::size_t CalendarQueue::next_live_bucket(std::size_t from) const {
  std::size_t w = from >> 6;
  std::uint64_t word = occupied_[w] >> (from & 63);
  if (word != 0) return from + static_cast<std::size_t>(std::countr_zero(word));
  do {
    ++w;
    DCHECK(w < occupied_.size(), "window count out of sync");
  } while (occupied_[w] == 0);
  return (w << 6) + static_cast<std::size_t>(std::countr_zero(occupied_[w]));
}

bool CalendarQueue::next_time(MicroSec* at) {
  if (in_window_ > 0) {
    cursor_ = next_live_bucket(cursor_);
    const Bucket& b = buckets_[cursor_];
    *at = b.events[b.head].at;
    return true;
  }
  if (!overflow_.empty()) {
    *at = overflow_.front().at;
    return true;
  }
  return false;
}

Event* CalendarQueue::front() {
  if (in_window_ == 0) migrate_overflow();
  // migrate_overflow guarantees at least one in-window event, so the scan
  // always lands on a live bucket.
  cursor_ = next_live_bucket(cursor_);
  Bucket& b = buckets_[cursor_];
  return &b.events[b.head];
}

void CalendarQueue::drop_front() {
  Bucket& b = buckets_[cursor_];
  DCHECK(b.head < b.events.size(), "drop_front() without a front event");
  ++b.head;
  --in_window_;
  if (b.head == b.events.size()) {
    b.events.clear();  // keeps capacity for the next window lap
    b.head = 0;
    occupied_[cursor_ >> 6] &= ~(std::uint64_t{1} << (cursor_ & 63));
  }
}

// ---- EventQueue ------------------------------------------------------------

void EventQueue::heap_push(Event&& ev) {
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
}

void EventQueue::heap_pop() {
  DCHECK(!heap_.empty(), "drop_front() on an empty heap");
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
  heap_.pop_back();
}

void EventQueue::drain_before(MicroSec horizon, std::vector<Event>& out) {
  // next_time peeks without migrating the calendar's overflow band, so a
  // queue whose earliest event sits at or past the horizon is untouched.
  MicroSec at = 0;
  while (next_time(&at) && at < horizon) {
    Event* ev = front();
    out.push_back(std::move(*ev));
    drop_front();
  }
}

}  // namespace charisma::sim
