file(REMOVE_RECURSE
  "../bench/fig3_file_sizes"
  "../bench/fig3_file_sizes.pdb"
  "CMakeFiles/fig3_file_sizes.dir/fig3_file_sizes.cpp.o"
  "CMakeFiles/fig3_file_sizes.dir/fig3_file_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_file_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
