#include "cache/simulators.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace charisma::cache {
namespace {

using trace::EventKind;

trace::Record data(EventKind kind, cfs::JobId job, cfs::NodeId node,
                   cfs::FileId file, std::int64_t offset, std::int64_t bytes) {
  trace::Record r;
  r.kind = kind;
  r.job = job;
  r.node = node;
  r.file = file;
  r.offset = offset;
  r.bytes = bytes;
  return r;
}

// A mixed synthetic trace: several jobs, shared and private files, reads and
// writes, enough volume that the sweep actually chunks across threads.
trace::SortedTrace mixed_trace() {
  trace::SortedTrace t;
  util::Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const auto job = static_cast<cfs::JobId>(1 + rng.uniform(4));
    const auto node = static_cast<cfs::NodeId>(rng.uniform(8));
    const auto file = static_cast<cfs::FileId>(1 + rng.uniform(6));
    const auto block = static_cast<std::int64_t>(rng.uniform(512));
    const bool write = rng.chance(0.15);
    t.records.push_back(data(write ? EventKind::kWrite : EventKind::kRead,
                             job, node, file, block * 4096,
                             static_cast<std::int64_t>(64 + rng.uniform(8192))));
  }
  return t;
}

std::set<SessionKey> read_only_for(const trace::SortedTrace&) {
  // Declare a fixed subset of (job, file) sessions read-only; the sweeps
  // only need *some* sessions eligible for compute-node caching.
  std::set<SessionKey> ro;
  for (cfs::JobId job = 1; job <= 4; ++job) {
    for (cfs::FileId file = 1; file <= 3; ++file) ro.emplace(job, file);
  }
  return ro;
}

std::vector<ComputeCacheConfig> compute_points() {
  std::vector<ComputeCacheConfig> configs(3);
  configs[0].buffers_per_node = 1;
  configs[1].buffers_per_node = 10;
  configs[2].buffers_per_node = 50;
  return configs;
}

std::vector<IoNodeSimConfig> io_points() {
  std::vector<IoNodeSimConfig> configs;
  for (const std::size_t buffers : {50u, 200u, 800u}) {
    for (const Policy policy : {Policy::kLru, Policy::kFifo}) {
      IoNodeSimConfig cfg;
      cfg.total_buffers = buffers;
      cfg.policy = policy;
      configs.push_back(cfg);
    }
  }
  IoNodeSimConfig combined;
  combined.total_buffers = 200;
  combined.compute_buffers_per_node = 1;
  configs.push_back(combined);
  IoNodeSimConfig ip_aware;  // ablation B: no inclusion property either
  ip_aware.total_buffers = 200;
  ip_aware.policy = Policy::kInterprocessAware;
  configs.push_back(ip_aware);
  return configs;
}

void expect_same(const ComputeCacheResult& a, const ComputeCacheResult& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.job_hit_rates, b.job_hit_rates);
  EXPECT_EQ(a.fraction_jobs_zero, b.fraction_jobs_zero);
  EXPECT_EQ(a.fraction_jobs_above_75, b.fraction_jobs_above_75);
}

void expect_same(const IoNodeSimResult& a, const IoNodeSimResult& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.request_hits, b.request_hits);
  EXPECT_EQ(a.block_accesses, b.block_accesses);
  EXPECT_EQ(a.block_hits, b.block_hits);
  EXPECT_EQ(a.filtered_by_compute, b.filtered_by_compute);
  EXPECT_EQ(a.hit_rate, b.hit_rate);
  EXPECT_EQ(a.block_hit_rate, b.block_hit_rate);
}

TEST(SweepRunner, ResultsAreInvariantUnderThreadCount) {
  const auto trace = mixed_trace();
  const auto ro = read_only_for(trace);
  const auto cc = compute_points();
  const auto io = io_points();

  util::ThreadPool one(1);
  const SweepRunner baseline(trace, ro, one);
  const auto compute_1 = baseline.run_compute(cc);
  const auto io_1 = baseline.run_io(io);
  ASSERT_EQ(compute_1.size(), cc.size());
  ASSERT_EQ(io_1.size(), io.size());

  for (const std::size_t threads : {2u, 8u}) {
    util::ThreadPool pool(threads);
    const SweepRunner runner(trace, ro, pool);
    const auto compute_n = runner.run_compute(cc);
    const auto io_n = runner.run_io(io);
    ASSERT_EQ(compute_n.size(), cc.size()) << threads << " threads";
    ASSERT_EQ(io_n.size(), io.size()) << threads << " threads";
    for (std::size_t i = 0; i < cc.size(); ++i) {
      expect_same(compute_1[i], compute_n[i]);
    }
    for (std::size_t i = 0; i < io.size(); ++i) {
      expect_same(io_1[i], io_n[i]);
    }
  }
}

TEST(SweepRunner, AgreesWithTheDirectSimulators) {
  // The prepared-replay fast path must compute exactly what the one-shot
  // entry points compute.
  const auto trace = mixed_trace();
  const auto ro = read_only_for(trace);
  util::ThreadPool pool(4);
  const SweepRunner runner(trace, ro, pool);

  const auto cc = compute_points();
  const auto compute = runner.run_compute(cc);
  for (std::size_t i = 0; i < cc.size(); ++i) {
    expect_same(compute[i], simulate_compute_cache(trace, ro, cc[i]));
  }
  const auto io = io_points();
  const auto io_results = runner.run_io(io);
  for (std::size_t i = 0; i < io.size(); ++i) {
    expect_same(io_results[i], simulate_io_cache(trace, ro, io[i]));
  }
}

TEST(SweepRunner, GroupedModeMatchesPerConfigMode) {
  const auto trace = mixed_trace();
  const auto ro = read_only_for(trace);
  const SweepRunner runner(trace, ro);  // serial: no pool needed

  const auto cc = compute_points();
  const auto compute_ref = runner.run_compute(cc, SweepMode::kPerConfig);
  const auto compute_grp = runner.run_compute(cc, SweepMode::kGrouped);
  for (std::size_t i = 0; i < cc.size(); ++i) {
    expect_same(compute_ref[i], compute_grp[i]);
  }
  const auto io = io_points();
  const auto io_ref = runner.run_io(io, SweepMode::kPerConfig);
  const auto io_grp = runner.run_io(io, SweepMode::kGrouped);
  for (std::size_t i = 0; i < io.size(); ++i) {
    expect_same(io_ref[i], io_grp[i]);
  }
}

TEST(SweepRunner, PlansDescribeTheGroupedPasses) {
  const SweepPlan compute_plan = plan_compute_sweep(compute_points());
  EXPECT_EQ(compute_plan.passes(), 1u);
  EXPECT_EQ(compute_plan.configs(), 3u);
  EXPECT_EQ(compute_plan.simulated_points(), 3u);
  ASSERT_EQ(compute_plan.groups.size(), 1u);
  EXPECT_EQ(compute_plan.groups[0].kind, SweepGroup::Kind::kStack);

  // io_points(): 3 buffer counts x {LRU, FIFO} + a §4.8 front point + an
  // IP-aware point -> one LRU stack pass, one FIFO batched pass, and the
  // two single-point leftovers fused into one multi pass.
  const SweepPlan io_plan = plan_io_sweep(io_points());
  EXPECT_EQ(io_plan.configs(), 8u);
  EXPECT_EQ(io_plan.passes(), 3u);
  std::size_t stack = 0, batched = 0, replay = 0, multi = 0;
  for (const SweepGroup& g : io_plan.groups) {
    switch (g.kind) {
      case SweepGroup::Kind::kStack: ++stack; break;
      case SweepGroup::Kind::kBatched: ++batched; break;
      case SweepGroup::Kind::kReplay: ++replay; break;
      case SweepGroup::Kind::kMulti:
        ++multi;
        EXPECT_EQ(g.configs, 2u);
        EXPECT_EQ(g.simulated, 2u);
        break;
    }
  }
  EXPECT_EQ(stack, 1u);
  EXPECT_EQ(batched, 1u);
  EXPECT_EQ(replay, 0u);  // singletons fold away whenever there are >= 2
  EXPECT_EQ(multi, 1u);
  EXPECT_FALSE(io_plan.describe().empty());
}

TEST(SweepRunner, SerialRunnerMatchesPooledRunner) {
  const auto trace = mixed_trace();
  const auto ro = read_only_for(trace);
  util::ThreadPool pool(4);
  const SweepRunner pooled(trace, ro, pool);
  const SweepRunner serial(trace, ro);
  EXPECT_EQ(serial.replay_ops(), pooled.replay_ops());

  const auto cc = compute_points();
  const auto io = io_points();
  const auto compute_s = serial.run_compute(cc);
  const auto compute_p = pooled.run_compute(cc);
  for (std::size_t i = 0; i < cc.size(); ++i) {
    expect_same(compute_s[i], compute_p[i]);
  }
  const auto io_s = serial.run_io(io);
  const auto io_p = pooled.run_io(io);
  for (std::size_t i = 0; i < io.size(); ++i) {
    expect_same(io_s[i], io_p[i]);
  }
}

TEST(SweepRunner, PassesExecutedLedgerMatchesThePlan) {
  // The grouped-mode speedup claim is "fewer trace passes for the same
  // results"; passes_executed() is the ledger that makes it checkable.
  const auto trace = mixed_trace();
  const auto ro = read_only_for(trace);
  const auto cc = compute_points();
  const auto io = io_points();

  const SweepRunner grouped(trace, ro);
  EXPECT_EQ(grouped.passes_executed(), 0u);
  (void)grouped.run_compute(cc, SweepMode::kGrouped);
  EXPECT_EQ(grouped.passes_executed(), plan_compute_sweep(cc).passes());
  (void)grouped.run_io(io, SweepMode::kGrouped);
  EXPECT_EQ(grouped.passes_executed(),
            plan_compute_sweep(cc).passes() + plan_io_sweep(io).passes());

  // Per-config mode replays once per config — strictly more passes here.
  const SweepRunner per_config(trace, ro);
  (void)per_config.run_compute(cc, SweepMode::kPerConfig);
  (void)per_config.run_io(io, SweepMode::kPerConfig);
  EXPECT_EQ(per_config.passes_executed(), cc.size() + io.size());
  EXPECT_GT(per_config.passes_executed(), grouped.passes_executed());

  // The ledger is schedule-independent: a pooled runner counts the same.
  util::ThreadPool pool(4);
  const SweepRunner pooled(trace, ro, pool);
  (void)pooled.run_compute(cc, SweepMode::kGrouped);
  (void)pooled.run_io(io, SweepMode::kGrouped);
  EXPECT_EQ(pooled.passes_executed(), grouped.passes_executed());
}

TEST(SweepRunner, PreparesOnlyDataRequests) {
  trace::SortedTrace t;
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 100));
  t.records.push_back(data(EventKind::kWrite, 1, 0, 1, 0, 100));
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 0));  // empty: dropped
  t.records.push_back(data(EventKind::kOpen, 1, 0, 1, 0, 0));
  util::ThreadPool pool(1);
  const SweepRunner runner(t, {}, pool);
  EXPECT_EQ(runner.replay_ops(), 2u);
}

TEST(SweepRunner, EmptyConfigListsYieldEmptyResults) {
  trace::SortedTrace t;
  util::ThreadPool pool(1);
  const SweepRunner runner(t, {}, pool);
  EXPECT_TRUE(runner.run_compute({}).empty());
  EXPECT_TRUE(runner.run_io({}).empty());
}

}  // namespace
}  // namespace charisma::cache
