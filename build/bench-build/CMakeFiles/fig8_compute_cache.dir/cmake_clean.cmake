file(REMOVE_RECURSE
  "../bench/fig8_compute_cache"
  "../bench/fig8_compute_cache.pdb"
  "CMakeFiles/fig8_compute_cache.dir/fig8_compute_cache.cpp.o"
  "CMakeFiles/fig8_compute_cache.dir/fig8_compute_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_compute_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
