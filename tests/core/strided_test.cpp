#include "core/strided.hpp"

#include <gtest/gtest.h>

namespace charisma::core {
namespace {

using trace::EventKind;

trace::Record data(EventKind kind, cfs::JobId job, cfs::NodeId node,
                   cfs::FileId file, std::int64_t offset, std::int64_t bytes) {
  trace::Record r;
  r.kind = kind;
  r.job = job;
  r.node = node;
  r.file = file;
  r.offset = offset;
  r.bytes = bytes;
  return r;
}

TEST(Strided, ConsecutiveRunCollapsesToOneRequest) {
  trace::SortedTrace t;
  for (int i = 0; i < 50; ++i) {
    t.records.push_back(data(EventKind::kRead, 1, 0, 1, i * 100, 100));
  }
  const auto s = rewrite_strided(t, 10, 4096);
  EXPECT_EQ(s.original_requests, 50u);
  EXPECT_EQ(s.strided_requests, 1u);
  EXPECT_EQ(s.longest_run, 50u);
  EXPECT_GT(s.request_reduction(), 0.97);
}

TEST(Strided, RegularStrideCollapses) {
  trace::SortedTrace t;
  // record 100 at offsets 0, 500, 1000, ... (interval 400).
  for (int i = 0; i < 20; ++i) {
    t.records.push_back(data(EventKind::kRead, 1, 0, 1, i * 500, 100));
  }
  const auto s = rewrite_strided(t, 10, 4096);
  EXPECT_EQ(s.strided_requests, 1u);
  EXPECT_EQ(s.runs_of_two_or_more, 1u);
}

TEST(Strided, ChangingSizeBreaksTheRun) {
  trace::SortedTrace t;
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 100));
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 100, 100));
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 200, 999));  // new size
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 1199, 999));
  const auto s = rewrite_strided(t, 10, 4096);
  EXPECT_EQ(s.strided_requests, 2u);
}

TEST(Strided, ChangingIntervalBreaksTheRun) {
  trace::SortedTrace t;
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 100));
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 200, 100));   // gap 100
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 400, 100));   // gap 100
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 900, 100));   // gap 400
  const auto s = rewrite_strided(t, 10, 4096);
  EXPECT_EQ(s.strided_requests, 2u);
}

TEST(Strided, BackwardSeeksSplitRuns) {
  trace::SortedTrace t;
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 1000, 100));
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 100));  // backwards
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 500, 100));
  const auto s = rewrite_strided(t, 10, 4096);
  // The backward seek splits; the two forward requests then form one
  // stride (record 100, interval 400).
  EXPECT_EQ(s.strided_requests, 2u);
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 300, 100));
  const auto s2 = rewrite_strided(t, 10, 4096);
  EXPECT_EQ(s2.strided_requests, 3u);  // another backward split
}

TEST(Strided, StreamsAreSeparatedByNodeFileAndDirection) {
  trace::SortedTrace t;
  // Interleaved in trace order, but each (node, direction) stream is regular.
  for (int i = 0; i < 10; ++i) {
    t.records.push_back(data(EventKind::kRead, 1, 0, 1, i * 100, 100));
    t.records.push_back(data(EventKind::kRead, 1, 1, 1, i * 100, 100));
    t.records.push_back(data(EventKind::kWrite, 1, 0, 2, i * 100, 100));
  }
  const auto s = rewrite_strided(t, 10, 4096);
  EXPECT_EQ(s.original_requests, 30u);
  EXPECT_EQ(s.strided_requests, 3u);
}

TEST(Strided, MessageAccountingUsesBlocksAndIoNodes) {
  trace::SortedTrace t;
  // 16 consecutive 4 KB reads = 16 blocks; conventional: 16 messages.
  for (int i = 0; i < 16; ++i) {
    t.records.push_back(data(EventKind::kRead, 1, 0, 1, i * 4096, 4096));
  }
  const auto s = rewrite_strided(t, 4, 4096);
  EXPECT_EQ(s.original_messages, 16u);
  // One strided request spanning 16 blocks over 4 I/O nodes: 4 messages.
  EXPECT_EQ(s.strided_messages, 4u);
  EXPECT_NEAR(s.message_reduction(), 0.75, 1e-9);
}

TEST(Strided, SingletonsStaySingletons) {
  trace::SortedTrace t;
  t.records.push_back(data(EventKind::kRead, 1, 0, 1, 0, 100));
  const auto s = rewrite_strided(t, 10, 4096);
  EXPECT_EQ(s.original_requests, 1u);
  EXPECT_EQ(s.strided_requests, 1u);
  EXPECT_EQ(s.runs_of_two_or_more, 0u);
  EXPECT_DOUBLE_EQ(s.request_reduction(), 0.0);
}

TEST(Strided, RenderMentionsReductions) {
  trace::SortedTrace t;
  for (int i = 0; i < 4; ++i) {
    t.records.push_back(data(EventKind::kRead, 1, 0, 1, i * 100, 100));
  }
  const auto s = rewrite_strided(t, 10, 4096);
  EXPECT_NE(s.render().find("requests"), std::string::npos);
  EXPECT_NE(s.render().find("I/O-node messages"), std::string::npos);
}

}  // namespace
}  // namespace charisma::core
