#include "cache/prefetch.hpp"

#include <gtest/gtest.h>

namespace charisma::cache {
namespace {

using trace::EventKind;

trace::Record data(EventKind kind, cfs::NodeId node, cfs::FileId file,
                   std::int64_t offset, std::int64_t bytes) {
  trace::Record r;
  r.kind = kind;
  r.job = 1;
  r.node = node;
  r.file = file;
  r.offset = offset;
  r.bytes = bytes;
  return r;
}

trace::SortedTrace sequential_block_reads(int blocks) {
  trace::SortedTrace t;
  for (int b = 0; b < blocks; ++b) {
    t.records.push_back(data(EventKind::kRead, 0, 1, b * 4096, 4096));
  }
  return t;
}

TEST(Prefetch, DepthZeroMatchesPlainCache) {
  const auto t = sequential_block_reads(64);
  PrefetchConfig cfg;
  cfg.prefetch_depth = 0;
  cfg.io_nodes = 2;
  cfg.total_buffers = 16;
  const auto r = simulate_prefetch(t, cfg);
  EXPECT_EQ(r.request_hits, 0u);  // every block is new
  EXPECT_EQ(r.prefetches_issued, 0u);
}

TEST(Prefetch, OneBlockLookaheadTurnsSequentialMissesIntoHits) {
  const auto t = sequential_block_reads(64);
  PrefetchConfig cfg;
  cfg.prefetch_depth = 1;
  cfg.io_nodes = 2;
  cfg.total_buffers = 16;
  const auto r = simulate_prefetch(t, cfg);
  // After warmup, block b+1 is already resident when requested.
  EXPECT_GT(r.hit_rate, 0.9);
  EXPECT_GT(r.prefetch_accuracy, 0.9);
}

TEST(Prefetch, SequentialDetectorSuppressesRandomPrefetch) {
  // Random far-apart single-block reads: the detector should not prefetch.
  trace::SortedTrace t;
  std::int64_t off = 0;
  for (int i = 0; i < 50; ++i) {
    off = (off + 1000 * 4096) % (100000 * 4096);
    t.records.push_back(data(EventKind::kRead, 0, 1, off, 100));
  }
  PrefetchConfig with_detector;
  with_detector.prefetch_depth = 2;
  with_detector.sequential_detector = true;
  const auto detected = simulate_prefetch(t, with_detector);
  PrefetchConfig blind = with_detector;
  blind.sequential_detector = false;
  const auto blind_r = simulate_prefetch(t, blind);
  EXPECT_EQ(detected.prefetches_issued, 0u);
  EXPECT_GT(blind_r.prefetches_issued, 40u);
  EXPECT_LT(blind_r.prefetch_accuracy, 0.1);
}

TEST(Prefetch, InterleavedSubBlockStreamBenefits) {
  // Two nodes interleave small records through a file: block-level access
  // is sequential in aggregate, so lookahead helps both of them.
  trace::SortedTrace t;
  for (int rec = 0; rec < 256; ++rec) {
    t.records.push_back(
        data(EventKind::kRead, rec % 2, 1, rec * 1024, 1024));
  }
  PrefetchConfig cfg;
  cfg.prefetch_depth = 1;
  cfg.io_nodes = 2;
  cfg.total_buffers = 8;
  const auto with = simulate_prefetch(t, cfg);
  cfg.prefetch_depth = 0;
  const auto without = simulate_prefetch(t, cfg);
  EXPECT_GT(with.hit_rate, without.hit_rate);
}

TEST(Prefetch, DescribeMentionsAccuracy) {
  const auto r = simulate_prefetch(sequential_block_reads(4), {});
  EXPECT_NE(r.describe().find("accuracy"), std::string::npos);
}

// ---- Write-behind ----------------------------------------------------------

TEST(WriteBehind, CoalescesSmallWritesPerBlock) {
  trace::SortedTrace t;
  // 16 writes of 256 B into one 4 KB block: write-through = 16 disk
  // writes, write-behind = 1.
  for (int i = 0; i < 16; ++i) {
    t.records.push_back(data(EventKind::kWrite, 0, 1, i * 256, 256));
  }
  WriteBehindConfig cfg;
  cfg.io_nodes = 1;
  const auto r = simulate_write_behind(t, cfg);
  EXPECT_EQ(r.write_requests, 16u);
  EXPECT_EQ(r.disk_writes_through, 16u);
  EXPECT_EQ(r.disk_writes_behind, 1u);
  EXPECT_NEAR(r.reduction(), 15.0 / 16.0, 1e-9);
}

TEST(WriteBehind, LargeWritesGainNothing) {
  trace::SortedTrace t;
  for (int i = 0; i < 8; ++i) {
    t.records.push_back(
        data(EventKind::kWrite, 0, 1, i * 4096, 4096));
  }
  WriteBehindConfig cfg;
  cfg.io_nodes = 1;
  const auto r = simulate_write_behind(t, cfg);
  EXPECT_EQ(r.disk_writes_through, 8u);
  EXPECT_EQ(r.disk_writes_behind, 8u);
  EXPECT_DOUBLE_EQ(r.reduction(), 0.0);
}

TEST(WriteBehind, TinyBufferEvictsEarly) {
  trace::SortedTrace t;
  // Alternate writes to two blocks; a 1-buffer cache ping-pongs.
  for (int i = 0; i < 10; ++i) {
    t.records.push_back(
        data(EventKind::kWrite, 0, 1, (i % 2) * 4096, 256));
  }
  WriteBehindConfig cfg;
  cfg.io_nodes = 1;
  cfg.buffers_per_node = 1;
  const auto r = simulate_write_behind(t, cfg);
  EXPECT_EQ(r.disk_writes_behind, 10u);  // every write evicts the other
  cfg.buffers_per_node = 2;
  const auto r2 = simulate_write_behind(t, cfg);
  EXPECT_EQ(r2.disk_writes_behind, 2u);  // both coalesce fully
}

TEST(WriteBehind, ReadsAreIgnored) {
  trace::SortedTrace t;
  t.records.push_back(data(EventKind::kRead, 0, 1, 0, 4096));
  const auto r = simulate_write_behind(t, {});
  EXPECT_EQ(r.write_requests, 0u);
  EXPECT_EQ(r.blocks_touched, 0u);
}

}  // namespace
}  // namespace charisma::cache
