#include "sim/inline_callback.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <utility>

namespace charisma::sim {
namespace {

TEST(InlineCallback, SmallCapturesStayInline) {
  int hits = 0;
  int* p = &hits;
  InlineCallback cb([p] { ++*p; });
  EXPECT_TRUE(static_cast<bool>(cb));
  EXPECT_TRUE(cb.is_inline());
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, DriverStepShapedCaptureStaysInline) {
  // The hot-path closure: [this, run, rank] — two pointers and an int32.
  // The whole point of the type is that this never heap-allocates.
  struct Driver {
    int steps = 0;
  } driver;
  struct JobRun {
  } run;
  std::int32_t rank = 7;
  InlineCallback cb([d = &driver, r = &run, rank] {
    (void)r;
    d->steps += rank;
  });
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(driver.steps, 7);
}

TEST(InlineCallback, CapturesUpToTheBudgetStayInline) {
  std::array<char, InlineCallback::kInlineSize> payload{};
  payload[0] = 42;
  InlineCallback cb([payload] { EXPECT_EQ(payload[0], 42); });
  EXPECT_TRUE(cb.is_inline());
  cb();
}

TEST(InlineCallback, OversizedCapturesFallBackToTheHeap) {
  std::array<char, InlineCallback::kInlineSize + 1> payload{};
  payload.back() = 9;
  int seen = 0;
  InlineCallback cb([payload, &seen] { seen = payload.back(); });
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(seen, 9);
}

TEST(InlineCallback, ThrowingMoveGoesToTheHeapEvenWhenSmall) {
  // Inline storage relocates with a move constructor during bucket-vector
  // growth, so a potentially-throwing move may not live in the buffer.
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&&) noexcept(false) {}
    void operator()() const {}
  };
  static_assert(sizeof(ThrowingMove) <= InlineCallback::kInlineSize);
  InlineCallback cb{ThrowingMove{}};
  EXPECT_FALSE(cb.is_inline());
  cb();
}

TEST(InlineCallback, MoveConstructionTransfersTheTarget) {
  auto token = std::make_shared<int>(5);
  InlineCallback a([token] { EXPECT_EQ(*token, 5); });
  EXPECT_EQ(token.use_count(), 2);
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(token.use_count(), 2) << "move must not duplicate the capture";
  b();
}

TEST(InlineCallback, MoveAssignmentDestroysTheOldTarget) {
  auto old_token = std::make_shared<int>(1);
  auto new_token = std::make_shared<int>(2);
  InlineCallback a([old_token] {});
  InlineCallback b([new_token] {});
  EXPECT_EQ(old_token.use_count(), 2);
  a = std::move(b);
  EXPECT_EQ(old_token.use_count(), 1) << "old target must be destroyed";
  EXPECT_EQ(new_token.use_count(), 2);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
}

TEST(InlineCallback, DestructionReleasesHeapTargets) {
  auto token = std::make_shared<int>(0);
  std::array<char, InlineCallback::kInlineSize> padding{};
  {
    InlineCallback cb([token, padding] { (void)padding; });
    EXPECT_FALSE(cb.is_inline());
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineCallback, CopiesFromAnLvalueStdFunction) {
  // The engine's recursion idiom re-schedules a named std::function by copy;
  // the implicit converting constructor must accept that lvalue.
  int calls = 0;
  std::function<void()> fn = [&calls] { ++calls; };
  InlineCallback first(fn);
  InlineCallback second(fn);
  first();
  second();
  EXPECT_EQ(calls, 2);
}

TEST(InlineCallback, DefaultConstructedIsEmpty) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.is_inline());
}

}  // namespace
}  // namespace charisma::sim
