# Empty dependencies file for charisma_bench_common.
# This may be replaced when dependencies are built.
