# Empty compiler generated dependencies file for ablation_trace_buffering.
# This may be replaced when dependencies are built.
