// Plain-text table rendering for the paper-style report output printed by
// the bench binaries and the CharismaStudy report.
#pragma once

#include <string>
#include <vector>

namespace charisma::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next added row.
  Table& add_rule();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  /// Renders with column alignment; numeric-looking cells right-aligned.
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

/// Convenience: fixed-precision double to string.
[[nodiscard]] std::string fmt(double value, int precision = 1);

}  // namespace charisma::util
