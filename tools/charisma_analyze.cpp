// charisma_analyze — offline analysis of a saved CHARISMA trace.
//
// Reads a binary trace written by the collector (e.g. via
// `trace_and_characterize --out=nas.chtr`) and runs the requested analyses,
// like the analysis programs behind the paper's §4.
//
// By default the trace is *streamed*: the file's blocks are merged in
// corrected chronological order and pushed once through the bounded-state
// accumulators, so resident memory is O(merge window) — a trace far larger
// than RAM still analyzes.  Streaming mode also opens the file tolerantly:
// a trace cut short by a crash (unpatched block count, torn final block)
// analyzes up to the crash point with a warning instead of failing.
// --trace-mode=materialized loads the whole record vector in memory (the
// reference path; required for --strided, which rewrites the records).
//
//   charisma_analyze <trace.chtr> [--report=<section>] [--cache=<sim>]
//                    [--buffers=N] [--policy=lru|fifo|ip] [--strided]
//                    [--trace-mode=streaming|materialized]
//   charisma_analyze --workload=synthetic|replay:<chwl>|checkpoint
//                    [--scale=S] [--seed=N] [--engine-threads=N]
//                    [--chkpoint-*=...] [same analysis flags]
//   charisma_analyze --workload=... --dump-workload=<out.chwl>
//
//   --report:  all (default), jobs, nodes, population, files-per-job,
//              sizes, requests, sequentiality, intervals, regularity,
//              modes, sharing, paper (measured-vs-published deltas per
//              figure, with the fidelity tolerance bands)
//   --cache:   io | compute | combined  (trace-driven cache simulation)
//   --workload: instead of reading a saved trace, run a full study from the
//              named workload source and analyze its trace — so a replayed
//              chwl log (or the checkpoint archetype) gets the complete
//              paper-figure report end to end
//   --dump-workload: export the selected source's op stream as a chwl v1
//              text log (see workload/replay.hpp for the schema) and exit
#include <cstdio>
#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzers.hpp"
#include "analysis/fidelity.hpp"
#include "cache/replay.hpp"
#include "cache/simulators.hpp"
#include "core/stream_study.hpp"
#include "core/strided.hpp"
#include "trace/postprocess.hpp"
#include "trace/spill.hpp"
#include "util/flags.hpp"
#include "workload/replay.hpp"
#include "workload/source.hpp"

using namespace charisma;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: charisma_analyze <trace.chtr> [--report=SECTION] "
               "[--cache=io|compute|combined] [--buffers=N] "
               "[--policy=lru|fifo|ip] [--strided] "
               "[--trace-mode=streaming|materialized] "
               "[--spill-budget-mb=N] [--spill-dir=DIR]\n"
               "       charisma_analyze --workload=synthetic|replay:<chwl>|"
               "checkpoint [--scale=S] [--seed=N] [--engine-threads=N] "
               "[--chkpoint-*=...] [analysis flags]\n"
               "       charisma_analyze --workload=... "
               "--dump-workload=<out.chwl>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> known{
      "report",   "cache",         "buffers", "policy",
      "strided",  "trace-mode",    "workload", "dump-workload",
      "scale",    "seed",          "engine-threads",
      "spill-budget-mb", "spill-dir"};
  for (const auto& name : workload::checkpoint_flag_names()) {
    known.push_back(name);
  }
  util::Flags flags(argc, argv, known);

  // Workload-source modes share one config: --scale/--seed/--chkpoint-*
  // apply on top of the NAS defaults.
  workload::WorkloadConfig wconfig;
  wconfig.scale = flags.get_double("scale", wconfig.scale);
  wconfig.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<std::int64_t>(wconfig.seed)));
  workload::apply_checkpoint_flags(flags, &wconfig);
  const workload::SourceSpec source_spec =
      workload::parse_source_spec(flags.get("workload", "synthetic"));

  if (flags.has("dump-workload")) {
    // Export-only mode: write the source's op stream as a chwl log.
    const std::string out_path = flags.get("dump-workload", "");
    if (!flags.has("workload") || out_path.empty()) return usage();
    try {
      const auto source = workload::load_source(source_spec, wconfig);
      workload::export_source_log(*source, out_path);
      std::printf("dumped workload '%s' (%zu jobs, %zu input files) to %s\n",
                  workload::to_string(source_spec).c_str(),
                  source->workload().jobs.size(),
                  source->workload().inputs.size(), out_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot dump workload: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  // Exactly one trace origin: a saved trace file, or a study run live from
  // a workload source.
  const bool study_mode = flags.has("workload");
  if (study_mode ? flags.remaining_argc() != 1 : flags.remaining_argc() < 2) {
    return usage();
  }
  const std::string path = study_mode ? "" : flags.remaining()[1];
  const core::TraceMode mode =
      core::parse_trace_mode(flags.get("trace-mode", "streaming"));
  const std::string report = flags.get("report", "all");
  const auto want = [&](const char* name) {
    return report == "all" || report == name;
  };
  // Figure 8 / --cache both replay the filtered op stream; collect it during
  // the streaming merge only when something will consume it.
  const bool want_ops = want("paper") || flags.has("cache");
  // Streaming spill knobs (study mode and file mode alike).
  const std::int64_t spill_budget_mb =
      flags.get_int("spill-budget-mb", core::kDefaultSpillBudgetMb);
  const std::string spill_dir = flags.get("spill-dir", "");

  trace::TraceHeader header;
  std::uint64_t record_count = 0;
  analysis::SessionStore store;
  analysis::RequestSizeResult requests;
  std::optional<trace::SortedTrace> sorted;  // materialized mode only
  std::optional<cache::ReplayOpSpill> ops;   // streaming mode only

  try {
    if (study_mode) {
      core::StudyConfig config;
      config.workload = wconfig;
      config.source = source_spec;
      config.engine_threads =
          static_cast<int>(flags.get_int("engine-threads", 1));
      config.spill_budget_mb = spill_budget_mb;
      config.spill_dir = spill_dir;
      if (mode == core::TraceMode::kStreaming) {
        core::StreamOptions sopts;
        sopts.collect_replay_ops = want_ops;
        core::StreamedStudyOutput out = core::run_streamed_study(config, sopts);
        header = out.header;
        record_count = out.records;
        store = std::move(out.sessions);
        requests = std::move(out.request_sizes);
        if (want_ops) ops = std::move(out.replay_ops);
      } else {
        core::StudyOutput out = core::run_study(config);
        header = out.raw.header;
        record_count = out.raw.record_count();
        sorted = std::move(out.sorted);
        store = analysis::SessionStore(*sorted);
        requests = analysis::analyze_request_sizes(*sorted);
      }
    } else if (mode == core::TraceMode::kStreaming) {
      bool truncated = false;
      const trace::SpilledTrace spilled =
          trace::SpilledTrace::open(path, /*tolerant=*/true, &truncated);
      if (truncated) {
        std::fprintf(stderr,
                     "warning: %s is truncated (crashed writer?); analyzing "
                     "the %llu complete blocks before the tear\n",
                     path.c_str(),
                     static_cast<unsigned long long>(spilled.blocks.size()));
      }
      header = spilled.header;
      record_count = spilled.record_count();
      analysis::SessionAccumulator sessions;
      analysis::RequestSizeAccumulator request_acc;
      trace::SpillBudget op_budget(spill_budget_mb * (std::int64_t{1} << 20));
      std::optional<cache::ReplayOpSink> op_sink;
      std::vector<trace::RecordSink*> sinks{&sessions, &request_acc};
      if (want_ops) {
        cache::ReplayOpSinkOptions oopts;
        oopts.budget = &op_budget;
        oopts.dir = spill_dir;
        op_sink.emplace(std::move(oopts));
        sinks.push_back(&*op_sink);
      }
      (void)trace::stream_postprocess(spilled, sinks);
      store = sessions.take(header);
      requests = request_acc.finish();
      if (op_sink.has_value()) ops = op_sink->finish();
    } else {
      const trace::TraceFile raw = trace::TraceFile::read(path);
      header = raw.header;
      record_count = raw.record_count();
      sorted = trace::postprocess(raw);
      store = analysis::SessionStore(*sorted);
      requests = analysis::analyze_request_sizes(*sorted);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot %s %s: %s\n",
                 study_mode ? "run workload" : "read",
                 study_mode ? workload::to_string(source_spec).c_str()
                            : path.c_str(),
                 e.what());
    return 1;
  }
  std::printf("trace '%s': %llu records from %d compute / %d I/O nodes\n",
              header.label.c_str(),
              static_cast<unsigned long long>(record_count),
              header.compute_nodes, header.io_nodes);

  if (want("jobs")) {
    std::printf("--- Jobs (Figure 1) ---\n%s\n",
                analysis::analyze_job_concurrency(store).render().c_str());
  }
  if (want("nodes")) {
    std::printf("--- Nodes per job (Figure 2) ---\n%s\n",
                analysis::analyze_node_counts(store).render().c_str());
  }
  if (want("population")) {
    std::printf("--- File population (S4.2) ---\n%s\n",
                analysis::analyze_file_population(store).render().c_str());
  }
  if (want("files-per-job")) {
    std::printf("--- Files per job (Table 1) ---\n%s\n",
                analysis::analyze_files_per_job(store).render().c_str());
  }
  if (want("sizes")) {
    std::printf("--- File sizes (Figure 3) ---\n%s\n",
                analysis::analyze_file_sizes(store).render().c_str());
  }
  if (want("requests")) {
    std::printf("--- Request sizes (Figure 4) ---\n%s\n",
                requests.render().c_str());
  }
  if (want("sequentiality")) {
    std::printf("--- Sequentiality (Figures 5/6) ---\n%s\n",
                analysis::analyze_sequentiality(store).render().c_str());
  }
  if (want("intervals")) {
    std::printf("--- Interval regularity (Table 2) ---\n%s\n",
                analysis::analyze_intervals(store).render().c_str());
  }
  if (want("regularity")) {
    std::printf("--- Request-size regularity (Table 3) ---\n%s\n",
                analysis::analyze_request_regularity(store).render().c_str());
  }
  if (want("modes")) {
    std::printf("--- I/O modes (S4.6) ---\n%s\n",
                analysis::analyze_mode_usage(store).render().c_str());
  }
  if (want("sharing")) {
    std::printf(
        "--- Sharing (Figure 7) ---\n%s\n",
        analysis::analyze_sharing(store, header.block_size).render().c_str());
  }

  // Both cache consumers share one runner (and, streaming, one op spill).
  const std::set<cache::SessionKey> read_only = store.read_only_sessions();
  std::optional<cache::SweepRunner> runner;
  if (want_ops) {
    if (ops.has_value()) {
      runner.emplace(std::move(*ops), read_only);
    } else {
      runner.emplace(*sorted, read_only);
    }
  }

  if (want("paper")) {
    // Figure 8's statistics come from the compute-cache replay (one buffer
    // per node, the paper's configuration).
    const auto compute = runner->run_compute({cache::ComputeCacheConfig{}});
    const analysis::CacheFigures cache_figs{
        compute[0].fraction_jobs_above_75, compute[0].fraction_jobs_zero};
    const auto checks = analysis::check_paper_fidelity(
        store, requests, header.block_size, &cache_figs);
    std::printf("--- Paper-vs-measured deltas ---\n%s\n",
                analysis::render_fidelity(checks).c_str());
  }

  if (flags.has("cache")) {
    const std::string sim = flags.get("cache", "io");
    const auto buffers =
        static_cast<std::size_t>(flags.get_int("buffers", 4000));
    const std::string pol = flags.get("policy", "lru");
    cache::Policy policy = cache::Policy::kLru;
    if (pol == "fifo") policy = cache::Policy::kFifo;
    if (pol == "ip") policy = cache::Policy::kInterprocessAware;

    if (sim == "compute") {
      cache::ComputeCacheConfig cfg;
      cfg.buffers_per_node = std::max<std::size_t>(buffers / 4000, 1);
      const auto r = runner->run_compute({cfg})[0];
      std::printf(
          "compute-node cache: %zu jobs, %.1f%% at zero, %.1f%% above "
          "75%%, overall hit rate %.1f%%\n",
          r.job_hit_rates.size(), r.fraction_jobs_zero * 100.0,
          r.fraction_jobs_above_75 * 100.0, r.overall_hit_rate() * 100.0);
    } else {
      cache::IoNodeSimConfig cfg;
      cfg.io_nodes = header.io_nodes > 0 ? header.io_nodes : 10;
      cfg.total_buffers = buffers;
      cfg.policy = policy;
      if (sim == "combined") cfg.compute_buffers_per_node = 1;
      const auto r = runner->run_io({cfg})[0];
      std::printf("I/O-node cache (%s, %zu buffers): %s\n",
                  to_string(policy), buffers, r.describe().c_str());
    }
  }

  if (flags.get_bool("strided", false)) {
    if (!sorted.has_value()) {
      std::fprintf(stderr,
                   "--strided rewrites the record vector and needs "
                   "--trace-mode=materialized\n");
      return 2;
    }
    std::printf(
        "--- Strided rewriting (S5) ---\n%s\n",
        core::rewrite_strided(*sorted, header.io_nodes, header.block_size)
            .render()
            .c_str());
  }
  return 0;
}
