// The instrumented CFS library.
//
// Mirrors the paper's instrumentation point exactly: the user-level CFS
// library is wrapped so that every call emits an event record into the
// node's trace buffer (paper §3.1).  Jobs that were not relinked against the
// instrumented library run through the same CFS but emit nothing — the
// workload model marks those jobs untraced, reproducing the paper's partial
// coverage (429 of 779 multi-node jobs traced).
#pragma once

#include <optional>
#include <string>

#include "cfs/client.hpp"
#include "trace/collector.hpp"

namespace charisma::trace {

class InstrumentedClient {
 public:
  /// `traced == false` models a job linked against the plain library.
  InstrumentedClient(cfs::Client& client, Collector& collector,
                     bool traced = true)
      : client_(&client), collector_(&collector), traced_(traced) {}

  [[nodiscard]] bool traced() const noexcept { return traced_; }
  [[nodiscard]] cfs::NodeId node() const noexcept { return client_->node(); }

  cfs::OpenResult open(cfs::JobId job, const std::string& path,
                       std::uint8_t flags, cfs::IoMode mode);
  cfs::IoResult read(cfs::Fd fd, std::int64_t bytes);
  cfs::IoResult write(cfs::Fd fd, std::int64_t bytes);
  std::optional<std::int64_t> seek(cfs::Fd fd, std::int64_t offset,
                                   cfs::Whence whence);
  std::optional<std::int64_t> close(cfs::Fd fd);
  bool unlink(cfs::JobId job, const std::string& path);

 private:
  void emit(Record r) {
    if (traced_) collector_->append(r);
  }

  cfs::Client* client_;
  Collector* collector_;
  bool traced_;
};

}  // namespace charisma::trace
