# Empty dependencies file for fig3_file_sizes.
# This may be replaced when dependencies are built.
