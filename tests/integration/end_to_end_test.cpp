// Integration: the paper's qualitative findings must emerge from the full
// pipeline (workload -> machine -> CFS -> tracer -> postprocess -> analysis).
// Quantitative closeness is the benches' job (EXPERIMENTS.md); these tests
// pin the *shape* so a regression in any layer trips loudly.
#include <gtest/gtest.h>

#include "analysis/analyzers.hpp"
#include "cache/simulators.hpp"
#include "core/strided.hpp"
#include "core/study.hpp"

namespace charisma {
namespace {

struct Fixture {
  core::StudyOutput study;
  analysis::SessionStore store;
  std::set<cache::SessionKey> read_only;

  Fixture()
      : study(core::run_study_at_scale(0.15, 42)),
        store(study.sorted),
        read_only(store.read_only_sessions()) {}
};

const Fixture& fixture() {
  static const Fixture* f = new Fixture();
  return *f;
}

TEST(EndToEnd, JobMixShape) {
  const auto r = analysis::analyze_job_concurrency(fixture().store);
  // Paper Figure 1: idle more than a quarter of the time, a substantial
  // multiprogrammed share, never more than 8 jobs.
  EXPECT_GT(r.idle_fraction, 0.10);
  EXPECT_LT(r.idle_fraction, 0.60);
  EXPECT_GT(r.multiprogrammed_fraction, 0.10);
  EXPECT_LE(r.max_concurrent, 8);
}

TEST(EndToEnd, NodeCountShape) {
  const auto r = analysis::analyze_node_counts(fixture().store);
  // Paper Figure 2: one-node jobs dominate the population; big jobs
  // dominate node usage.
  EXPECT_GT(r.single_node_job_fraction, 0.6);
  EXPECT_GT(r.large_job_usage_share, 0.5);
  for (const auto& [nodes, count] : r.jobs_by_nodes) {
    EXPECT_EQ(nodes & (nodes - 1), 0) << "non-power-of-two job size";
  }
}

TEST(EndToEnd, FilePopulationShape) {
  const auto r = analysis::analyze_file_population(fixture().store);
  // Paper §4.2: write-only >> read-only >> read-write; few untouched; few
  // temporary.
  EXPECT_GT(r.write_only, r.read_only * 2);
  EXPECT_GT(r.read_only, r.read_write * 3);
  EXPECT_GT(r.untouched, 0);
  EXPECT_LT(r.temporary_fraction, 0.05);
  EXPECT_GT(r.sessions, 3000);
}

TEST(EndToEnd, RequestSizeShape) {
  const auto r = analysis::analyze_request_sizes(fixture().study.sorted);
  // Paper Figure 4: the vast majority of requests are small, but most of
  // the data moves through large requests.
  EXPECT_GT(r.small_read_fraction, 0.85);
  EXPECT_LT(r.small_read_data_fraction, 0.15);
  EXPECT_GT(r.small_write_fraction, 0.80);
  EXPECT_LT(r.small_write_data_fraction, 0.15);
}

TEST(EndToEnd, SequentialityShape) {
  const auto r = analysis::analyze_sequentiality(fixture().store);
  // Paper Figures 5/6: read-only and write-only files overwhelmingly
  // sequential; write-only mostly fully consecutive; a substantial share
  // of read-only files NOT fully consecutive (interleaved); read-write
  // files non-sequential.
  EXPECT_GT(r.read_only.fully_sequential, 0.85);
  EXPECT_GT(r.write_only.fully_sequential, 0.95);
  EXPECT_GT(r.write_only.fully_consecutive, 0.8);
  EXPECT_LT(r.read_only.fully_consecutive, 0.6);
  EXPECT_LT(r.read_write.fully_sequential, 0.2);
}

TEST(EndToEnd, RegularityShape) {
  const auto intervals = analysis::analyze_intervals(fixture().store);
  // Paper Table 2: ~95% of files have at most one distinct interval size;
  // nearly all 1-interval files are consecutive.
  const double at_most_one =
      static_cast<double>(intervals.buckets[0] + intervals.buckets[1]) /
      static_cast<double>(intervals.total_files);
  EXPECT_GT(at_most_one, 0.85);
  EXPECT_GT(intervals.one_interval_consecutive_share, 0.95);

  const auto sizes = analysis::analyze_request_regularity(fixture().store);
  // Paper Table 3: >90% of files use only one or two request sizes.
  EXPECT_GT(sizes.one_or_two_sizes_share, 0.9);
}

TEST(EndToEnd, ModeUsageShape) {
  const auto r = analysis::analyze_mode_usage(fixture().store);
  EXPECT_GT(r.mode0_fraction, 0.97);  // paper §4.6: over 99%
}

TEST(EndToEnd, SharingShape) {
  const auto r =
      analysis::analyze_sharing(fixture().store, util::kBlockSize);
  // Paper Figure 7: most concurrently-open read-only files fully
  // byte-shared; write-only files mostly share no bytes; strong
  // block-level sharing.
  EXPECT_GT(r.read_only.files, 20);
  EXPECT_GT(r.read_only.fully_byte_shared, 0.5);
  // Only a handful of write-only files are concurrently shared at this
  // test scale, so the threshold is loose; the full-scale bench lands at
  // ~90% (matching the paper).
  EXPECT_GT(r.write_only.no_bytes_shared, 0.5);
  EXPECT_GT(r.read_only.fully_block_shared, 0.6);
}

TEST(EndToEnd, ComputeCacheShape) {
  cache::ComputeCacheConfig cfg;
  cfg.buffers_per_node = 1;
  const auto one =
      cache::simulate_compute_cache(fixture().study.sorted,
                                    fixture().read_only, cfg);
  // Paper Figure 8: bimodal/trimodal — a cluster of jobs the cache cannot
  // help at all and a cluster it helps a lot.
  EXPECT_GT(one.fraction_jobs_zero, 0.15);
  EXPECT_GT(one.fraction_jobs_above_75, 0.10);
  // "One buffer was as good as many buffers": 50 buffers gain little.
  cfg.buffers_per_node = 50;
  const auto fifty =
      cache::simulate_compute_cache(fixture().study.sorted,
                                    fixture().read_only, cfg);
  EXPECT_LT(fifty.overall_hit_rate() - one.overall_hit_rate(), 0.2);
}

TEST(EndToEnd, IoNodeCacheShape) {
  cache::IoNodeSimConfig cfg;
  cfg.io_nodes = 10;
  cfg.total_buffers = 4000;
  const auto lru = cache::simulate_io_cache(fixture().study.sorted,
                                            fixture().read_only, cfg);
  // Paper Figure 9: a modest cache reaches a high request hit rate.
  EXPECT_GT(lru.hit_rate, 0.75);
  // And a tiny cache does notably worse.
  cfg.total_buffers = 100;
  const auto tiny = cache::simulate_io_cache(fixture().study.sorted,
                                             fixture().read_only, cfg);
  EXPECT_LT(tiny.hit_rate, lru.hit_rate - 0.02);
}

TEST(EndToEnd, CombinedCacheShape) {
  cache::IoNodeSimConfig cfg;
  cfg.io_nodes = 10;
  cfg.total_buffers = 500;  // 50 buffers per I/O node, as in §4.8
  const auto io_only = cache::simulate_io_cache(fixture().study.sorted,
                                                fixture().read_only, cfg);
  cfg.compute_buffers_per_node = 1;
  const auto combined = cache::simulate_io_cache(fixture().study.sorted,
                                                 fixture().read_only, cfg);
  // §4.8: the front caches absorb requests, yet the I/O-node hit rate only
  // drops a little — its hits are mostly interprocess.  (Paper: ~3%; our
  // synthetic workload keeps somewhat more intraprocess locality in the
  // I/O-node stream, see EXPERIMENTS.md.)
  EXPECT_GT(combined.filtered_by_compute, 0u);
  EXPECT_LT(io_only.hit_rate - combined.hit_rate, 0.20);
}

TEST(EndToEnd, StridedRewritingShape) {
  const auto s = core::rewrite_strided(fixture().study.sorted, 10,
                                       util::kBlockSize);
  // §5: regular request/interval sizes were common, so strided requests
  // collapse most of the request stream.
  EXPECT_GT(s.request_reduction(), 0.5);
  EXPECT_GT(s.message_reduction(), 0.5);
}

TEST(EndToEnd, FilesPerJobShape) {
  const auto r = analysis::analyze_files_per_job(fixture().store);
  // Paper Table 1: mass at 1 and at 4 and a majority at 5+.
  EXPECT_GT(r.buckets[0], 0);
  EXPECT_GT(r.buckets[3], 0);
  EXPECT_GT(r.buckets[4], r.buckets[1]);
  EXPECT_GT(r.max_files_one_job, 100);
}

}  // namespace
}  // namespace charisma
