# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sec48_combined_cache.
