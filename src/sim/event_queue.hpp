// Event representation and the engine's interchangeable pending-event
// queues, split out of engine.cpp so the sharded coordinator (sharded.hpp)
// can own one queue per shard.
//
// Determinism rules (shared by every queue and enforced by the engine's
// differential suites):
//   * time is integer microseconds (util::MicroSec);
//   * ties are broken by schedule order (a monotone sequence number), so a
//     (seed, config) pair always produces the identical event interleaving.
//
// Two implementations honor that contract:
//   * kBucketed (default): a two-level calendar queue — near-future events
//     hash into fixed-width time buckets (each bucket a small sorted run),
//     far-future events wait in a sorted overflow band and migrate into the
//     bucket window when it advances.  O(1) amortized per event instead of
//     the binary heap's O(log n) on large pending sets.
//   * kReferenceHeap: the original binary heap, kept for differential
//     testing (tests/sim/engine_differential_test.cpp) and selectable as
//     the build default with -DCHARISMA_REFERENCE_QUEUE=ON.
// Both yield events in exactly the same (at, seq) order.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_callback.hpp"
#include "util/units.hpp"

namespace charisma::sim {

using util::MicroSec;

enum class QueueKind : std::uint8_t { kBucketed, kReferenceHeap };

#if defined(CHARISMA_REFERENCE_QUEUE)
inline constexpr QueueKind kDefaultQueueKind = QueueKind::kReferenceHeap;
#else
inline constexpr QueueKind kDefaultQueueKind = QueueKind::kBucketed;
#endif

/// One scheduled callback.  `seq` is assigned by the engine in schedule
/// order and is globally unique within a run, including across shards.
struct Event {
  MicroSec at = 0;
  std::uint64_t seq = 0;
  InlineCallback fn;
};

/// Min-heap comparator: a comes after b in (at, seq) dispatch order.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  }
};

/// The two-level calendar queue.  Level 1: kBucketCount buckets of
/// kBucketWidth microseconds each, covering [window_start_, window_start_ +
/// kSpan); each bucket keeps its pending events sorted by (at, seq) from
/// `head` onward.  Level 2: a binary-heap overflow band for events at or
/// beyond the window, migrated bucket-ward when the window empties.
class CalendarQueue {
 public:
  static constexpr int kBucketShift = 7;  // 128 us per bucket
  static constexpr MicroSec kBucketWidth = MicroSec{1} << kBucketShift;
  // Span = 2.1 s of simulated time.  The window must comfortably cover
  // the workload's compute think times (hundreds of ms to ~1 s): every
  // event scheduled past the window takes a round trip through the
  // overflow binary heap, which costs more than the whole bucketed path.
  // 16384 bucket headers are 512 KiB — noise next to a study's trace.
  static constexpr std::size_t kBucketCount = 16384;
  static constexpr MicroSec kSpan =
      kBucketWidth * static_cast<MicroSec>(kBucketCount);

  CalendarQueue() : buckets_(kBucketCount), occupied_(kBucketCount / 64, 0) {}

  void push(Event&& ev);
  /// Earliest pending time; false when empty.  May advance the bucket
  /// cursor but never reorders or migrates events.
  [[nodiscard]] bool next_time(MicroSec* at);
  /// The (at, seq)-least event, left in place; queue must be non-empty.
  /// The pointer is invalidated by any push — callers move the callback
  /// out and call drop_front() before dispatching it.
  [[nodiscard]] Event* front();
  /// Removes the event front() returned; queue must be non-empty.
  void drop_front();
  [[nodiscard]] std::size_t size() const noexcept {
    return in_window_ + overflow_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  struct Bucket {
    std::vector<Event> events;  // sorted by (at, seq) from `head` on
    std::size_t head = 0;
  };

  void insert_in_window(Event&& ev);
  /// Rebases the window onto the earliest overflow event and moves every
  /// overflow event inside the new window into its bucket.
  void migrate_overflow();

  /// Index of the first live bucket at or after `from`; in_window_ must
  /// be non-zero.  One countr_zero step per 64 buckets, so sparse windows
  /// (an event, then hundreds of empty buckets of think time) cost a few
  /// word loads instead of a per-bucket walk.
  [[nodiscard]] std::size_t next_live_bucket(std::size_t from) const;

  std::vector<Bucket> buckets_;
  /// Bit b set iff buckets_[b] has pending events (head < events.size()).
  std::vector<std::uint64_t> occupied_;
  std::vector<Event> overflow_;  // min-heap under EventAfter
  MicroSec window_start_ = 0;    // multiple of kBucketWidth
  std::size_t cursor_ = 0;       // no non-empty bucket before this index
  std::size_t in_window_ = 0;
};

/// One pending-event queue of either kind behind a uniform front/drop
/// interface.  The branch on kind_ mirrors what Engine::step used to do
/// inline, so the serial dispatch path is unchanged by the extraction.
class EventQueue {
 public:
  explicit EventQueue(QueueKind kind = kDefaultQueueKind) : kind_(kind) {}

  [[nodiscard]] QueueKind kind() const noexcept { return kind_; }

  void push(Event&& ev) {
    if (kind_ == QueueKind::kBucketed) {
      calendar_.push(std::move(ev));
    } else {
      heap_push(std::move(ev));
    }
  }

  [[nodiscard]] bool next_time(MicroSec* at) {
    if (kind_ == QueueKind::kBucketed) return calendar_.next_time(at);
    if (heap_.empty()) return false;
    *at = heap_.front().at;
    return true;
  }

  /// The (at, seq)-least event, left in place; queue must be non-empty.
  /// Invalidated by any push — move the callback out and drop_front()
  /// before invoking it.
  [[nodiscard]] Event* front() {
    return kind_ == QueueKind::kBucketed ? calendar_.front() : &heap_.front();
  }

  void drop_front() {
    if (kind_ == QueueKind::kBucketed) {
      calendar_.drop_front();
    } else {
      heap_pop();
    }
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return kind_ == QueueKind::kBucketed ? calendar_.size() : heap_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Moves every event with at < horizon into `out`, appended in (at, seq)
  /// dispatch order.  The sharded coordinator's harvest step: one sorted
  /// run per shard per conservative window.
  void drain_before(MicroSec horizon, std::vector<Event>& out);

 private:
  void heap_push(Event&& ev);
  void heap_pop();

  QueueKind kind_;
  CalendarQueue calendar_;
  std::vector<Event> heap_;  // min-heap under EventAfter
};

}  // namespace charisma::sim
