file(REMOVE_RECURSE
  "CMakeFiles/charisma_disk.dir/disk.cpp.o"
  "CMakeFiles/charisma_disk.dir/disk.cpp.o.d"
  "libcharisma_disk.a"
  "libcharisma_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
