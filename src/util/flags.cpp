#include "util/flags.hpp"

#include <algorithm>
#include <cstdlib>

namespace charisma::util {

Flags::Flags(int argc, char** argv, const std::vector<std::string>& known) {
  if (argc > 0) remaining_.push_back(argv[0]);
  const auto is_known = [&known](const std::string& key) {
    return std::find(known.begin(), known.end(), key) != known.end();
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      const std::string key =
          eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
      if (is_known(key)) {
        // Only --key=value and bare --key (boolean) forms: a separated
        // "--key value" form would be ambiguous with boolean flags.
        values_[key] = eq != std::string::npos ? arg.substr(eq + 1) : "true";
        continue;
      }
    }
    remaining_.push_back(argv[i]);
  }
}

bool Flags::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::get(const std::string& key,
                       const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

std::int64_t Flags::get_int(const std::string& key,
                            std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end()
             ? fallback
             : std::strtoll(it->second.c_str(), nullptr, 10);
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace charisma::util
