file(REMOVE_RECURSE
  "CMakeFiles/charisma_cfs.dir/client.cpp.o"
  "CMakeFiles/charisma_cfs.dir/client.cpp.o.d"
  "CMakeFiles/charisma_cfs.dir/file_system.cpp.o"
  "CMakeFiles/charisma_cfs.dir/file_system.cpp.o.d"
  "CMakeFiles/charisma_cfs.dir/io_node.cpp.o"
  "CMakeFiles/charisma_cfs.dir/io_node.cpp.o.d"
  "CMakeFiles/charisma_cfs.dir/runtime.cpp.o"
  "CMakeFiles/charisma_cfs.dir/runtime.cpp.o.d"
  "libcharisma_cfs.a"
  "libcharisma_cfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_cfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
