// charisma_lint — determinism guard for the CHARISMA tree.
//
// Scans <root>/{src,bench,tools} for the hazards that break the simulator's
// determinism contract (see tools/lint_rules.hpp and docs/determinism.md).
// Registered as a ctest test, so `ctest` fails the build the moment a
// wall-clock read, raw rand(), float, or hash-order iteration lands in a
// result-producing path.
//
// Usage:
//   charisma_lint [root]          scan the tree (root defaults to ".")
//   charisma_lint --list-rules    print the rule names and exit
#include <cstdio>
#include <exception>
#include <string>

#include "tools/lint_rules.hpp"

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : charisma::lint::known_rules()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: charisma_lint [root] | --list-rules\n");
      return 0;
    }
    root = arg;
  }

  try {
    const auto findings = charisma::lint::scan_tree(root);
    for (const auto& f : findings) {
      std::printf("%s\n", charisma::lint::format(f).c_str());
    }
    if (!findings.empty()) {
      std::printf("charisma_lint: %zu finding(s) in '%s'\n", findings.size(),
                  root.c_str());
      return 1;
    }
    std::printf("charisma_lint: clean\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "charisma_lint: %s\n", e.what());
    return 2;
  }
}
