file(REMOVE_RECURSE
  "../bench/sec46_mode_usage"
  "../bench/sec46_mode_usage.pdb"
  "CMakeFiles/sec46_mode_usage.dir/sec46_mode_usage.cpp.o"
  "CMakeFiles/sec46_mode_usage.dir/sec46_mode_usage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec46_mode_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
