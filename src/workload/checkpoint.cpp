#include "workload/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace charisma::workload {

using util::MicroSec;

double daly_interval_seconds(double dump, double mtti) {
  CHECK(dump >= 0 && mtti > 0, "daly interval needs dump >= 0, mtti > 0; got ",
        dump, ", ", mtti);
  if (dump >= 2.0 * mtti) return mtti;
  // J. T. Daly's higher-order estimate of the optimum checkpoint interval:
  //   tau = sqrt(2 d M) [1 + (1/3) sqrt(d / 2M) + (1/9)(d / 2M)] - d
  const double x = dump / (2.0 * mtti);
  const double tau =
      std::sqrt(2.0 * dump * mtti) *
          (1.0 + std::sqrt(x) / 3.0 + x / 9.0) -
      dump;
  return std::max(tau, 0.0);
}

std::int64_t CheckpointPlan::bytes_per_rank(std::int32_t rank) const noexcept {
  if (nodes <= 0 || rank < 0 || rank >= nodes) return 0;
  const std::int64_t share = image_bytes / nodes;
  return rank == 0 ? share + image_bytes % nodes : share;
}

CheckpointPlan plan_checkpoints(const CheckpointConfig& config, double scale) {
  CHECK(config.size_tib > 0, "--chkpoint-size must be positive, got ",
        config.size_tib);
  CHECK(config.bw_gib_s > 0, "--chkpoint-bw must be positive, got ",
        config.bw_gib_s);
  CHECK(config.mtti_hours > 0, "--chkpoint-mtti must be positive, got ",
        config.mtti_hours);
  CHECK(config.nodes >= 1, "checkpoint nodes must be >= 1, got ",
        config.nodes);
  CHECK(config.chunk_bytes >= 1, "checkpoint chunk must be >= 1 byte, got ",
        config.chunk_bytes);
  CheckpointPlan plan;
  plan.nodes = config.nodes;
  plan.image_bytes = static_cast<std::int64_t>(
      std::llround(config.size_tib * 1024.0 * static_cast<double>(util::kGiB)));
  CHECK(plan.image_bytes >= 1, "checkpoint image rounds to zero bytes");
  plan.dump_seconds =
      static_cast<double>(plan.image_bytes) /
      (config.bw_gib_s * static_cast<double>(util::kGiB));
  plan.interval_seconds =
      daly_interval_seconds(plan.dump_seconds, config.mtti_hours * 3600.0);
  const double runtime_seconds =
      std::max(config.runtime_hours, 0.0) * 3600.0 * std::max(scale, 0.0);
  const double cycle = plan.interval_seconds + plan.dump_seconds;
  plan.dumps = cycle > 0
                   ? static_cast<std::int64_t>(runtime_seconds / cycle)
                   : 0;
  return plan;
}

GeneratedWorkload build_checkpoint_workload(const WorkloadConfig& config) {
  const CheckpointPlan plan = plan_checkpoints(config.checkpoint, config.scale);
  GeneratedWorkload w;
  w.config = config;
  w.window = static_cast<MicroSec>(
      std::llround(std::max(config.checkpoint.runtime_hours, 0.0) *
                   std::max(config.scale, 0.0) *
                   static_cast<double>(util::kHour)));

  JobSpec spec;
  spec.job = 1;
  spec.arrival = 0;
  spec.nodes = plan.nodes;
  spec.traced = true;
  spec.archetype = Archetype::kCheckpointWrite;
  spec.params.file_bytes = plan.bytes_per_rank(0);
  spec.params.chunk_bytes = config.checkpoint.chunk_bytes;
  spec.params.snapshots = static_cast<std::int32_t>(
      std::min<std::int64_t>(plan.dumps, 1 << 30));
  util::Rng seeder(config.seed);
  spec.seed = seeder.next();
  w.jobs.push_back(spec);
  return w;
}

JobScripts build_checkpoint_scripts(const JobSpec& spec,
                                    const CheckpointConfig& config,
                                    double scale) {
  const CheckpointPlan plan = plan_checkpoints(config, scale);
  JobScripts scripts;
  scripts.nodes.resize(static_cast<std::size_t>(spec.nodes));
  const auto interval_usec = static_cast<MicroSec>(
      std::llround(plan.interval_seconds * 1e6));

  util::Rng job_rng(spec.seed);
  for (std::int32_t rank = 0; rank < spec.nodes; ++rank) {
    util::Rng rng = job_rng.fork();
    auto& ops = scripts.nodes[static_cast<std::size_t>(rank)].ops;
    const std::int64_t rank_bytes = plan.bytes_per_rank(rank);
    if (plan.dumps == 0) continue;
    // SPMD start-up skew: ranks reach their first compute phase a few
    // milliseconds apart, so the dump pattern is seed-sensitive.
    Op skew;
    skew.kind = OpKind::kThink;
    skew.think = static_cast<MicroSec>(rng.uniform(10 * util::kMillisecond));
    ops.push_back(skew);
    for (std::int64_t dump = 0; dump < plan.dumps; ++dump) {
      // Compute for Daly's interval, then line up: every rank dumps the
      // same epoch together.
      Op barrier;
      barrier.kind = OpKind::kBarrier;
      barrier.think = interval_usec;
      ops.push_back(barrier);

      const std::int32_t path =
          static_cast<std::int32_t>(scripts.paths.size());
      scripts.paths.push_back("ckpt/r" + std::to_string(rank) + ".d" +
                              std::to_string(dump));
      Op open;
      open.kind = OpKind::kOpen;
      open.path = path;
      open.flags = cfs::kWrite | cfs::kCreate | cfs::kTruncate;
      open.mode = IoMode::kIndependent;
      ops.push_back(open);
      for (std::int64_t done = 0; done < rank_bytes;) {
        Op write;
        write.kind = OpKind::kWrite;
        write.path = path;
        write.bytes = std::min<std::int64_t>(config.chunk_bytes,
                                             rank_bytes - done);
        ops.push_back(write);
        done += write.bytes;
      }
      Op close;
      close.kind = OpKind::kClose;
      close.path = path;
      ops.push_back(close);
    }
  }
  return scripts;
}

}  // namespace charisma::workload
