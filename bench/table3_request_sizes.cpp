// Table 3: number of distinct request sizes used in each file.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  const auto result =
      analysis::analyze_request_regularity(Context::instance().store());
  std::printf("%s\n", result.render().c_str());

  static constexpr const char* kNames[] = {"0", "1", "2", "3", "4+"};
  Comparison cmp("Table 3: distinct request sizes per file (% of files)");
  for (std::size_t i = 0; i < result.buckets.size(); ++i) {
    cmp.percent_row(std::string(kNames[i]) + " distinct size(s)",
                    analysis::paper::kTable3Percent[i] / 100.0,
                    result.total_files > 0
                        ? static_cast<double>(result.buckets[i]) /
                              static_cast<double>(result.total_files)
                        : 0.0);
  }
  cmp.percent_row("files with only one or two request sizes", 0.914,
                  result.one_or_two_sizes_share);
  cmp.print();
}

void BM_RequestRegularityAnalysis(benchmark::State& state) {
  const auto& store = Context::instance().store();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_request_regularity(store));
  }
}
BENCHMARK(BM_RequestRegularityAnalysis)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Table 3 (request-size regularity)",
                    charisma::bench::reproduce)
