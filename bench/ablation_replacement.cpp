// Ablation B: replacement-policy design space for the I/O-node cache.
// The paper's §5: "Replacement policies other than LRU or FIFO should be
// developed ... to optimize for interprocess locality."  We compare LRU,
// FIFO, and our interprocess-aware prototype across cache sizes.
#include "common.hpp"

namespace charisma::bench {
namespace {

double run(std::size_t buffers, cache::Policy policy) {
  auto& ctx = Context::instance();
  cache::IoNodeSimConfig cfg;
  cfg.total_buffers = buffers;
  cfg.policy = policy;
  cfg.io_nodes = 10;
  return cache::simulate_io_cache(ctx.study().sorted, ctx.read_only(), cfg)
      .hit_rate;
}

void reproduce() {
  util::Table t({"4K buffers", "LRU", "FIFO", "IP-aware"});
  double best_gain = 0.0;
  std::size_t best_at = 0;
  for (std::size_t buffers : {100u, 250u, 500u, 1000u, 2000u, 4000u, 8000u}) {
    const double lru = run(buffers, cache::Policy::kLru);
    const double fifo = run(buffers, cache::Policy::kFifo);
    const double ip = run(buffers, cache::Policy::kInterprocessAware);
    t.add_row({std::to_string(buffers), util::fmt(lru, 3),
               util::fmt(fifo, 3), util::fmt(ip, 3)});
    if (ip - lru > best_gain) {
      best_gain = ip - lru;
      best_at = buffers;
    }
  }
  std::printf("%s\n", t.render().c_str());

  Comparison cmp("Ablation B: replacement policies");
  cmp.row("paper position", "LRU beats FIFO; better policies should exist",
          best_gain > 0
              ? "IP-aware beats LRU by " +
                    util::fmt(best_gain * 100.0, 2) + " points at " +
                    std::to_string(best_at) + " buffers"
              : "IP-aware never beats LRU on this trace");
  cmp.print();
}

void BM_PolicySim(benchmark::State& state) {
  auto& ctx = Context::instance();
  cache::IoNodeSimConfig cfg;
  cfg.total_buffers = 2000;
  cfg.io_nodes = 10;
  cfg.policy = static_cast<cache::Policy>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache::simulate_io_cache(ctx.study().sorted, ctx.read_only(), cfg));
  }
}
BENCHMARK(BM_PolicySim)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Ablation B (replacement policies)",
                    charisma::bench::reproduce)
