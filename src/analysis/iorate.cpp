#include "analysis/iorate.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace charisma::analysis {

IoRateResult analyze_io_rate(const trace::SortedTrace& trace,
                             const IoRateConfig& config) {
  util::check(config.bucket > 0, "bucket width must be positive");
  IoRateResult out;
  out.bucket_width = config.bucket;
  if (trace.records.empty()) return out;

  const util::MicroSec start = trace.header.trace_start;
  util::MicroSec end = trace.header.trace_end;
  for (const auto& r : trace.records) end = std::max(end, r.timestamp);
  const auto buckets = static_cast<std::size_t>(
      (end - start) / config.bucket + 1);
  out.timeline.resize(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    out.timeline[i].start = start + static_cast<util::MicroSec>(i) *
                                        config.bucket;
  }

  for (const auto& r : trace.records) {
    if (!r.is_data() || r.bytes <= 0) continue;
    const auto i = static_cast<std::size_t>(
        std::clamp<util::MicroSec>((r.timestamp - start) / config.bucket, 0,
                                   static_cast<util::MicroSec>(buckets) - 1));
    auto& b = out.timeline[i];
    ++b.requests;
    if (r.kind == trace::EventKind::kRead) {
      b.bytes_read += r.bytes;
    } else {
      b.bytes_written += r.bytes;
    }
  }

  const double seconds =
      static_cast<double>(config.bucket) / util::kSecond;
  double total_mb = 0.0;
  std::size_t quiet = 0;
  for (const auto& b : out.timeline) {
    const double mb =
        static_cast<double>(b.bytes_read + b.bytes_written) / 1e6;
    total_mb += mb;
    out.peak_mb_per_s = std::max(out.peak_mb_per_s, mb / seconds);
    if (b.requests == 0) ++quiet;
  }
  out.mean_mb_per_s =
      total_mb / (static_cast<double>(buckets) * seconds);
  out.quiet_fraction =
      static_cast<double>(quiet) / static_cast<double>(buckets);
  return out;
}

std::string IoRateResult::render() const {
  std::ostringstream s;
  s << timeline.size() << " buckets of "
    << util::format_duration(bucket_width) << ": mean "
    << util::fmt(mean_mb_per_s, 3) << " MB/s, peak "
    << util::fmt(peak_mb_per_s, 2) << " MB/s (burstiness "
    << util::fmt(burstiness()) << "x), "
    << util::format_percent(quiet_fraction) << " of buckets quiet\n";
  return s.str();
}

}  // namespace charisma::analysis
