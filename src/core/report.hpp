// Paper-style full report over a postprocessed trace.
#pragma once

#include <string>

#include "core/study.hpp"

namespace charisma::core {

/// Runs every analyzer and renders the whole characterization, §4-style.
[[nodiscard]] std::string full_report(const StudyOutput& study);

}  // namespace charisma::core
