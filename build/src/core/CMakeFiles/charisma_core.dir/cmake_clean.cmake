file(REMOVE_RECURSE
  "CMakeFiles/charisma_core.dir/collective.cpp.o"
  "CMakeFiles/charisma_core.dir/collective.cpp.o.d"
  "CMakeFiles/charisma_core.dir/export.cpp.o"
  "CMakeFiles/charisma_core.dir/export.cpp.o.d"
  "CMakeFiles/charisma_core.dir/report.cpp.o"
  "CMakeFiles/charisma_core.dir/report.cpp.o.d"
  "CMakeFiles/charisma_core.dir/strided.cpp.o"
  "CMakeFiles/charisma_core.dir/strided.cpp.o.d"
  "CMakeFiles/charisma_core.dir/study.cpp.o"
  "CMakeFiles/charisma_core.dir/study.cpp.o.d"
  "libcharisma_core.a"
  "libcharisma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
