// Histograms and empirical CDFs used by every analyzer.
//
// The paper's figures are CDFs over file sizes, request sizes (both by count
// and weighted by bytes moved), per-file sequentiality percentages, and
// per-job hit rates.  Two containers cover all of them:
//   * Histogram  — exact value -> weight map; cheap because the workloads use
//                  few distinct values (that regularity is itself a paper
//                  finding, Tables 2 and 3).
//   * Cdf        — a frozen, sorted view with quantile / fraction-at-or-below
//                  queries and fixed-point rendering for the bench output.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace charisma::util {

/// Exact weighted histogram over integer values.
class Histogram {
 public:
  /// Adds `weight` at `value` (weight defaults to one observation).
  void add(std::int64_t value, double weight = 1.0);

  [[nodiscard]] double total_weight() const noexcept { return total_; }
  [[nodiscard]] std::size_t distinct_values() const noexcept { return bins_.size(); }
  [[nodiscard]] bool empty() const noexcept { return bins_.empty(); }

  /// Weight at exactly `value` (0 if absent).
  [[nodiscard]] double weight_at(std::int64_t value) const noexcept;
  /// Fraction of total weight at values <= x. Returns 0 for an empty histogram.
  [[nodiscard]] double fraction_at_or_below(std::int64_t x) const noexcept;

  [[nodiscard]] const std::map<std::int64_t, double>& bins() const noexcept {
    return bins_;
  }

 private:
  std::map<std::int64_t, double> bins_;
  double total_ = 0.0;
};

/// A frozen empirical CDF.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(const Histogram& h);
  /// Builds from raw (unweighted) samples.
  static Cdf from_samples(std::vector<double> samples);

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

  /// P(X <= x).
  [[nodiscard]] double at(double x) const noexcept;
  /// Smallest x with CDF(x) >= q, q in [0,1].  Empty CDF returns 0.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  struct Point {
    double x;
    double cumulative_fraction;
  };
  [[nodiscard]] const std::vector<Point>& points() const noexcept {
    return points_;
  }

  /// Renders the CDF sampled at the given x positions, one "x<TAB>F(x)" row
  /// per line — the series the paper plots.
  [[nodiscard]] std::string render_series(const std::vector<double>& xs) const;

 private:
  std::vector<Point> points_;  // x strictly increasing, fractions nondecreasing
};

/// Log-spaced sample positions (for byte-size axes like Figures 3 and 4).
[[nodiscard]] std::vector<double> log_spaced(double lo, double hi,
                                             std::size_t points_per_decade);

}  // namespace charisma::util
