// The tracing pipeline's machine-side half: per-node record buffers and the
// service-node data collector.
//
// Paper §3.1: event records are buffered in a 4 KB buffer on each compute
// node (cutting collector messages by >90%); full buffers are sent to a
// collector on the service node, which appends them to the central trace
// file through a large staging buffer written in big sequential chunks.
// Job starts/ends are recorded through a separate mechanism (here: straight
// into the collector with the collector's own clock).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ipsc/machine.hpp"
#include "trace/spill.hpp"
#include "trace/trace_file.hpp"

namespace charisma::trace {

struct CollectorParams {
  /// Per-compute-node record buffer (one iPSC message fragment).
  std::int64_t node_buffer_bytes = util::kBlockSize;
  /// The collector's staging buffer, flushed to CFS when full.
  std::int64_t collector_buffer_bytes = 64 * util::kKiB;
  /// Set false to model the unbuffered design the paper rejected: each
  /// record is its own message to the collector (ablation C baseline).
  bool buffer_on_nodes = true;
};

class Collector {
 public:
  Collector(ipsc::Machine& machine, CollectorParams params = {});

  /// Sets the header's seed and label.  Must run before start_spilling():
  /// the spill writer fixes the header bytes (and the label's patch offsets)
  /// up front.  The materialized path may call it any time before take_trace.
  void annotate(std::uint64_t seed, std::string label);

  /// Switches to bounded-memory spilling: every flushed block goes to the
  /// spill writer (memory tier up to the options' budget, disk overflow in
  /// TraceFile's on-disk format) and is dropped from the collector.  Must be
  /// called before any record arrives; finish with take_spilled().
  void start_spilling(const SpillTarget& target,
                      const SpillWriterOptions& options = {});
  /// Legacy form: named file, synchronous, no memory tier.
  void start_spilling(const std::string& path);
  [[nodiscard]] bool spilling() const noexcept { return writer_ != nullptr; }

  /// Appends one event record generated on `record.node` at the current
  /// engine time.  Timestamps the record with the node's local clock.
  void append(Record record);
  /// Records a job start/end directly (bypasses node buffers).
  void append_job_event(Record record);
  /// Flushes every node buffer (end of a tracing period).
  void flush_all();

  /// Finishes the trace and moves it out. The collector is empty afterwards.
  /// Only valid on the materialized path (no start_spilling).
  [[nodiscard]] TraceFile take_trace();

  /// Finishes a spilled trace: flushes, patches the header, and returns the
  /// on-disk trace's index.  Only valid after start_spilling().
  [[nodiscard]] SpilledTrace take_spilled();

  // --- Perturbation accounting (paper §3.1, ablation C) ---------------
  [[nodiscard]] std::uint64_t records_seen() const noexcept {
    return records_seen_;
  }
  [[nodiscard]] std::uint64_t messages_to_collector() const noexcept {
    return messages_;
  }
  /// Bytes the collector wrote to CFS (its own, untraced, I/O).
  [[nodiscard]] std::int64_t trace_bytes_written() const noexcept {
    return trace_bytes_;
  }
  [[nodiscard]] std::uint64_t collector_cfs_writes() const noexcept {
    return collector_writes_;
  }

 private:
  struct NodeBuffer {
    std::vector<Record> records;
    /// Newest local timestamp this node has emitted (survives flushes):
    /// per-node record times must be monotone or the postprocessor's clock
    /// fit is built on sand.
    MicroSec last_timestamp = 0;
    bool any_records = false;
  };
  [[nodiscard]] std::size_t records_per_buffer() const noexcept {
    return records_per_buffer_;
  }
  void flush_node(NodeId node);
  /// Routes one finished block to the spill writer or the in-memory trace.
  void commit_block(TraceBlock&& block);

  ipsc::Machine* machine_;
  CollectorParams params_;
  std::size_t records_per_buffer_ = 1;  // derived from params_ once
  std::vector<NodeBuffer> buffers_;  // per compute node
  TraceFile trace_;
  std::unique_ptr<SpillWriter> writer_;
  std::int64_t staged_bytes_ = 0;
  std::uint64_t records_seen_ = 0;
  std::uint64_t messages_ = 0;
  std::int64_t trace_bytes_ = 0;
  std::uint64_t collector_writes_ = 0;
};

}  // namespace charisma::trace
