#include "cfs/file_system.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace charisma::cfs {

FileSystem::FileSystem(FileSystemParams params) : params_(params) {
  util::check(params_.io_nodes >= 1, "need at least one I/O node");
  util::check(params_.block_size > 0, "block size must be positive");
  disk_next_free_.assign(static_cast<std::size_t>(params_.io_nodes), 0);
}

FileSystem::Inode& FileSystem::inode(FileId file) {
  util::check(file >= 0 && static_cast<std::size_t>(file) < inodes_.size(),
              "bad file id");
  return inodes_[static_cast<std::size_t>(file)];
}

const FileSystem::Inode& FileSystem::inode(FileId file) const {
  util::check(file >= 0 && static_cast<std::size_t>(file) < inodes_.size(),
              "bad file id");
  return inodes_[static_cast<std::size_t>(file)];
}

FileSystem::Session* FileSystem::find_session(JobId job, FileId file) {
  const auto it = sessions_.find({job, file});
  return it == sessions_.end() ? nullptr : &it->second;
}

OpenResult FileSystem::open(JobId job, NodeId node, const std::string& path,
                            std::uint8_t flags, IoMode mode, MicroSec now) {
  OpenResult result;
  result.completed_at = now;
  if ((flags & (kRead | kWrite)) == 0) {
    result.error = "open without read or write intent";
    return result;
  }

  FileId id = kNoFile;
  const auto dir_it = directory_.find(path);
  if (dir_it != directory_.end()) {
    id = dir_it->second;
  } else if (flags & kCreate) {
    id = static_cast<FileId>(inodes_.size());
    Inode ino;
    ino.id = id;
    ino.path = path;
    ino.creator = job;
    // CFS starts each file's stripe on a rotating I/O node to spread load.
    ino.first_stripe = static_cast<int>(id % params_.io_nodes);
    inodes_.push_back(std::move(ino));
    directory_.emplace(path, id);
    result.created = true;
  } else {
    result.error = "no such file: " + path;
    return result;
  }

  Inode& ino = inode(id);
  if ((flags & kTruncate) && ino.size > 0) {
    ino.size = 0;  // block addresses are retained (no reuse), like real CFS
    ino.block_addr.clear();
  }

  auto [it, inserted] = sessions_.try_emplace({job, id});
  Session& s = it->second;
  if (inserted) {
    s.mode = mode;
    s.flags = flags;
  } else if (s.mode != mode) {
    result.error = "conflicting I/O mode within job session";
    result.created = false;
    return result;
  }
  s.flags |= flags;
  if (s.node_offset.count(node) != 0) {
    result.error = "node already holds this file open";
    return result;
  }
  s.node_offset.emplace(node, 0);
  s.turn_order.push_back(node);
  ++s.open_count;

  result.ok = true;
  result.fd = kBadFd;  // assigned by the client layer
  result.file = id;
  return result;
}

std::optional<std::int64_t> FileSystem::close(JobId job, NodeId node,
                                              FileId file) {
  Session* s = find_session(job, file);
  if (s == nullptr) return std::nullopt;
  const auto it = s->node_offset.find(node);
  if (it == s->node_offset.end()) return std::nullopt;
  s->node_offset.erase(it);
  --s->open_count;
  const std::int64_t size = inode(file).size;
  if (s->open_count == 0) sessions_.erase({job, file});
  return size;
}

bool FileSystem::unlink(JobId /*job*/, const std::string& path) {
  const auto it = directory_.find(path);
  if (it == directory_.end()) return false;
  Inode& ino = inode(it->second);
  ino.deleted = true;
  // Free the disk space accounting (blocks are not reused; capacity checks
  // use free_bytes which nets out deleted files).
  directory_.erase(it);
  return true;
}

void FileSystem::allocate_to(Inode& ino, std::int64_t new_size) {
  CHECK(new_size >= 0, "allocate_to(", new_size, ") on ", ino.path);
  const std::int64_t bs = params_.block_size;
  const std::int64_t blocks_needed = (new_size + bs - 1) / bs;
  while (static_cast<std::int64_t>(ino.block_addr.size()) < blocks_needed) {
    const auto b = static_cast<std::int64_t>(ino.block_addr.size());
    const int io = static_cast<int>((ino.first_stripe + b) % params_.io_nodes);
    auto& next = disk_next_free_[static_cast<std::size_t>(io)];
    // Stripe units are whole 4 KB blocks laid down back to back, so every
    // allocation lands block-aligned; an unaligned address means the
    // allocator's bookkeeping was corrupted.
    CHECK(next % bs == 0, "unaligned stripe unit at disk offset ", next,
          " on I/O node ", io);
    ino.block_addr.push_back(next);
    next += bs;
  }
  ino.size = std::max(ino.size, new_size);
  CHECK(static_cast<std::int64_t>(ino.block_addr.size()) * bs >= ino.size,
        "extent of ", ino.path, " (", ino.block_addr.size(),
        " blocks) does not cover size ", ino.size);
}

Reservation FileSystem::reserve(JobId job, NodeId node, FileId file,
                                std::int64_t bytes, bool is_write,
                                MicroSec now) {
  Reservation r;
  r.not_before = now;
  if (bytes < 0) {
    r.error = "negative request size";
    return r;
  }
  Session* s = find_session(job, file);
  if (s == nullptr) {
    r.error = "file not open by this node";
    return r;
  }
  // One hash lookup serves the open-by-this-node check, the mode-0 pointer
  // read, and the pointer advance below — this runs once per data op.
  const auto node_it = s->node_offset.find(node);
  if (node_it == s->node_offset.end()) {
    r.error = "file not open by this node";
    return r;
  }
  if (is_write && (s->flags & kWrite) == 0) {
    r.error = "file not open for writing";
    return r;
  }
  if (!is_write && (s->flags & kRead) == 0) {
    r.error = "file not open for reading";
    return r;
  }
  Inode& ino = inode(file);

  std::int64_t offset = 0;
  switch (s->mode) {
    case IoMode::kIndependent:
      offset = node_it->second;
      break;
    case IoMode::kShared:
      offset = s->shared_offset;
      r.not_before = std::max(now, s->pointer_free);
      s->pointer_free = r.not_before + params_.pointer_handoff;
      break;
    case IoMode::kOrdered: {
      // Strict round-robin: it must be this node's turn.
      const NodeId expected =
          s->turn_order[s->next_turn % s->turn_order.size()];
      if (node != expected) {
        r.error = "mode-2 access out of turn";
        return r;
      }
      offset = s->shared_offset;
      r.not_before = std::max(now, s->pointer_free);
      s->pointer_free = r.not_before + params_.pointer_handoff;
      ++s->next_turn;
      break;
    }
    case IoMode::kFixed: {
      if (s->fixed_size < 0) s->fixed_size = bytes;
      if (bytes != s->fixed_size) {
        r.error = "mode-3 access size mismatch";
        return r;
      }
      // Identical sizes make every node's round-robin offsets computable
      // locally, so out-of-order arrival is fine.
      const auto pos = static_cast<std::int64_t>(
          std::find(s->turn_order.begin(), s->turn_order.end(), node) -
          s->turn_order.begin());
      auto& rounds = node_it->second;  // reused as the round counter
      const auto nodes = static_cast<std::int64_t>(s->turn_order.size());
      offset = (rounds * nodes + pos) * bytes;
      ++rounds;
      break;
    }
  }

  // File-pointer consistency: every mode computes its offset from session
  // bookkeeping (per-node pointer, shared pointer, or round counter); a
  // negative offset means that bookkeeping went bad, not the caller.
  CHECK(offset >= 0, "mode ", to_string(s->mode), " pointer for node ", node,
        " went negative: ", offset);

  std::int64_t granted = bytes;
  if (is_write) {
    if (granted > 0) {
      const std::int64_t end = offset + granted;
      if (end > ino.size) {
        allocate_to(ino, end);
        r.extends_file = true;
      }
    }
  } else {
    granted = std::clamp<std::int64_t>(ino.size - offset, 0, bytes);
    // A pointer parked at/past EOF legitimately grants zero bytes; only a
    // non-empty reservation must stay inside the file.
    CHECK(granted == 0 || offset + granted <= ino.size,
          "read reservation [", offset, ", ", offset + granted,
          ") beyond EOF at ", ino.size);
  }

  // Advance the pointer that produced the offset.
  switch (s->mode) {
    case IoMode::kIndependent:
      node_it->second = offset + (is_write ? bytes : granted);
      break;
    case IoMode::kShared:
    case IoMode::kOrdered:
      s->shared_offset = offset + (is_write ? bytes : granted);
      break;
    case IoMode::kFixed:
      break;  // derived from the round counter
  }

  r.ok = true;
  r.offset = offset;
  r.bytes = granted;
  return r;
}

Reservation FileSystem::reserve_read(JobId job, NodeId node, FileId file,
                                     std::int64_t bytes, MicroSec now) {
  return reserve(job, node, file, bytes, /*is_write=*/false, now);
}

Reservation FileSystem::reserve_write(JobId job, NodeId node, FileId file,
                                      std::int64_t bytes, MicroSec now) {
  return reserve(job, node, file, bytes, /*is_write=*/true, now);
}

Reservation FileSystem::reserve_strided_read(JobId job, NodeId node,
                                             FileId file, std::int64_t record,
                                             std::int64_t interval,
                                             std::int64_t count,
                                             MicroSec now) {
  Reservation r;
  r.not_before = now;
  if (record <= 0 || interval < 0 || count <= 0) {
    r.error = "bad strided parameters";
    return r;
  }
  Session* s = find_session(job, file);
  if (s == nullptr) {
    r.error = "file not open by this node";
    return r;
  }
  const auto node_it = s->node_offset.find(node);
  if (node_it == s->node_offset.end()) {
    r.error = "file not open by this node";
    return r;
  }
  if (s->mode != IoMode::kIndependent) {
    r.error = "strided requests need an independent file pointer (mode 0)";
    return r;
  }
  if ((s->flags & kRead) == 0) {
    r.error = "file not open for reading";
    return r;
  }
  const Inode& ino = inode(file);
  const std::int64_t start = node_it->second;
  std::int64_t granted = 0;
  std::int64_t end = start;
  for (std::int64_t k = 0; k < count; ++k) {
    const std::int64_t elem = start + k * (record + interval);
    if (elem >= ino.size) break;
    const std::int64_t take = std::min(record, ino.size - elem);
    granted += take;
    end = elem + take;
    if (take < record) break;  // clipped at EOF
  }
  node_it->second = end;
  r.ok = true;
  r.offset = start;
  r.bytes = granted;
  return r;
}

std::optional<std::int64_t> FileSystem::seek(JobId job, NodeId node,
                                             FileId file, std::int64_t offset,
                                             Whence whence) {
  Session* s = find_session(job, file);
  if (s == nullptr || s->mode != IoMode::kIndependent) return std::nullopt;
  const auto it = s->node_offset.find(node);
  if (it == s->node_offset.end()) return std::nullopt;
  std::int64_t base = 0;
  switch (whence) {
    case Whence::kSet: base = 0; break;
    case Whence::kCurrent: base = it->second; break;
    case Whence::kEnd: base = inode(file).size; break;
  }
  const std::int64_t target = base + offset;
  if (target < 0) return std::nullopt;
  it->second = target;
  return target;
}

std::vector<BlockAccess> FileSystem::plan(FileId file, std::int64_t offset,
                                          std::int64_t bytes) const {
  BlockPlan scratch;
  plan_into(file, offset, bytes, scratch);
  return {scratch.begin(), scratch.end()};
}

void FileSystem::plan_into(FileId file, std::int64_t offset,
                           std::int64_t bytes, BlockPlan& out) const {
  util::check(offset >= 0 && bytes >= 0, "bad plan range");
  const Inode& ino = inode(file);
  const std::int64_t bs = params_.block_size;
  std::int64_t pos = offset;
  const std::int64_t end = offset + bytes;
  if (pos >= end) return;
  // Divide once for the first block; every later block advances by one, so
  // the per-block work is add/compare only (this runs for every block of
  // every simulated I/O operation).
  std::int64_t block = pos / bs;
  std::int64_t in_block = pos % bs;
  const std::int64_t last_block = (end - 1) / bs;
  out.reserve(out.size() + static_cast<std::size_t>(last_block - block + 1));
  CHECK(last_block < static_cast<std::int64_t>(ino.block_addr.size()),
        "plan for ", ino.path, " reaches block ", last_block, " but only ",
        ino.block_addr.size(), " are allocated");
  int io = static_cast<int>((ino.first_stripe + block) % params_.io_nodes);
  while (pos < end) {
    const std::int64_t len = std::min(end - pos, bs - in_block);
    BlockAccess& a = out.emplace_back();
    a.io_node = io;
    a.disk_offset = ino.block_addr[static_cast<std::size_t>(block)] + in_block;
    // Stripe-unit alignment: the block's base address must sit on a 4 KB
    // boundary of its I/O node's disk.
    DCHECK((a.disk_offset - in_block) % bs == 0,
           "block ", block, " of ", ino.path, " mapped to unaligned address ",
           a.disk_offset - in_block);
    a.file_block = block;
    a.bytes = len;
    pos += len;
    ++block;
    in_block = 0;
    if (++io == params_.io_nodes) io = 0;
  }
}

std::optional<FileId> FileSystem::lookup(const std::string& path) const {
  const auto it = directory_.find(path);
  if (it == directory_.end()) return std::nullopt;
  return it->second;
}

std::optional<FileStats> FileSystem::stats(FileId file) const {
  if (file < 0 || static_cast<std::size_t>(file) >= inodes_.size()) {
    return std::nullopt;
  }
  const Inode& ino = inodes_[static_cast<std::size_t>(file)];
  FileStats out;
  out.size = ino.size;
  out.creator = ino.creator;
  out.deleted = ino.deleted;
  out.path = ino.path;
  return out;
}

std::int64_t FileSystem::blocks_allocated(int io_node) const {
  util::check(io_node >= 0 && io_node < params_.io_nodes, "bad I/O node");
  return disk_next_free_[static_cast<std::size_t>(io_node)] /
         params_.block_size;
}

std::int64_t FileSystem::free_bytes(int io_node) const {
  util::check(io_node >= 0 && io_node < params_.io_nodes, "bad I/O node");
  return params_.disk_capacity -
         disk_next_free_[static_cast<std::size_t>(io_node)];
}

}  // namespace charisma::cfs
