#include "cache/prefetch.hpp"

#include <list>
#include <map>
#include <sstream>
#include <unordered_map>

#include "util/check.hpp"

namespace charisma::cache {

using trace::EventKind;
using trace::Record;

namespace {

/// An LRU/FIFO cache that also remembers which resident blocks arrived by
/// prefetch and have not been referenced yet.
class PrefetchingCache {
 public:
  PrefetchingCache(std::size_t capacity, Policy policy)
      : cache_(capacity, policy) {}

  struct Outcome {
    bool hit = false;
    bool first_use_of_prefetch = false;  // keep the stream rolling
  };
  Outcome access(const BlockKey& key, NodeId node) {
    Outcome o;
    o.hit = cache_.access(key, node);
    if (o.hit) {
      const auto it = unused_prefetches_.find(key);
      if (it != unused_prefetches_.end()) {
        ++used_;
        o.first_use_of_prefetch = true;
        unused_prefetches_.erase(it);
      }
    }
    return o;
  }

  void prefetch(const BlockKey& key, NodeId node) {
    if (cache_.contains(key)) return;
    ++issued_;
    (void)cache_.access(key, node);
    unused_prefetches_.insert(key);
  }

  [[nodiscard]] bool contains(const BlockKey& key) const {
    return cache_.contains(key);
  }
  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }
  [[nodiscard]] std::uint64_t used() const noexcept { return used_; }

 private:
  BlockCache cache_;
  std::set<BlockKey, decltype([](const BlockKey& a, const BlockKey& b) {
             return a.file != b.file ? a.file < b.file : a.block < b.block;
           })>
      unused_prefetches_;
  std::uint64_t issued_ = 0;
  std::uint64_t used_ = 0;
};

}  // namespace

PrefetchResult simulate_prefetch(const trace::SortedTrace& trace,
                                 const PrefetchConfig& config) {
  util::check(config.io_nodes >= 1, "need at least one I/O node");
  util::check(config.prefetch_depth >= 0, "negative prefetch depth");
  PrefetchResult out;

  const std::size_t per_node =
      config.total_buffers / static_cast<std::size_t>(config.io_nodes);
  std::vector<PrefetchingCache> caches;
  caches.reserve(static_cast<std::size_t>(config.io_nodes));
  for (int i = 0; i < config.io_nodes; ++i) {
    caches.emplace_back(per_node, config.policy);
  }
  // Sequential detector state: last block accessed, per file.
  std::unordered_map<cfs::FileId, std::int64_t> last_block;

  const auto cache_of = [&](std::int64_t block) -> PrefetchingCache& {
    return caches[static_cast<std::size_t>(block % config.io_nodes)];
  };

  for (const Record& r : trace.records) {
    if ((r.kind != EventKind::kRead && r.kind != EventKind::kWrite) ||
        r.bytes <= 0) {
      continue;
    }
    const std::int64_t first = r.offset / config.block_size;
    const std::int64_t last =
        (r.offset + r.bytes - 1) / config.block_size;
    ++out.requests;
    bool full_hit = true;
    for (std::int64_t b = first; b <= last; ++b) {
      const auto o = cache_of(b).access({r.file, b}, r.node);
      if (!o.hit) full_hit = false;
      // Prefetch ahead on a miss, and on the FIRST USE of a prefetched
      // block (streaming prefetch — otherwise a depth-1 lookahead
      // alternates hit/miss on a sequential scan).
      const auto it = last_block.find(r.file);
      const bool sequential =
          !config.sequential_detector ||
          (it != last_block.end() && it->second >= b - 2 && it->second <= b);
      const bool trigger = !o.hit || o.first_use_of_prefetch;
      if (config.prefetch_depth > 0 && trigger && sequential &&
          r.kind == EventKind::kRead) {
        for (int d = 1; d <= config.prefetch_depth; ++d) {
          cache_of(b + d).prefetch({r.file, b + d}, r.node);
        }
      }
    }
    last_block[r.file] = last;
    if (full_hit) ++out.request_hits;
  }

  for (const auto& c : caches) {
    out.prefetches_issued += c.issued();
    out.prefetches_used += c.used();
  }
  out.hit_rate = out.requests ? static_cast<double>(out.request_hits) /
                                    static_cast<double>(out.requests)
                              : 0.0;
  out.prefetch_accuracy =
      out.prefetches_issued
          ? static_cast<double>(out.prefetches_used) /
                static_cast<double>(out.prefetches_issued)
          : 0.0;
  return out;
}

std::string PrefetchResult::describe() const {
  std::ostringstream s;
  s << "hit_rate=" << hit_rate << " prefetches=" << prefetches_issued
    << " used=" << prefetches_used << " accuracy=" << prefetch_accuracy;
  return s.str();
}

WriteBehindResult simulate_write_behind(const trace::SortedTrace& trace,
                                        const WriteBehindConfig& config) {
  util::check(config.io_nodes >= 1, "need at least one I/O node");
  WriteBehindResult out;
  // Per I/O node: LRU set of dirty blocks; eviction = one disk write.
  struct DirtyBuffer {
    std::list<BlockKey> lru;
    std::unordered_map<BlockKey, std::list<BlockKey>::iterator, BlockKeyHash>
        index;
  };
  std::vector<DirtyBuffer> buffers(static_cast<std::size_t>(config.io_nodes));

  for (const Record& r : trace.records) {
    if (r.kind != EventKind::kWrite || r.bytes <= 0) continue;
    ++out.write_requests;
    const std::int64_t first = r.offset / config.block_size;
    const std::int64_t last = (r.offset + r.bytes - 1) / config.block_size;
    for (std::int64_t b = first; b <= last; ++b) {
      ++out.blocks_touched;
      ++out.disk_writes_through;  // baseline: every touch goes to disk
      auto& buf = buffers[static_cast<std::size_t>(b % config.io_nodes)];
      const BlockKey key{r.file, b};
      const auto it = buf.index.find(key);
      if (it != buf.index.end()) {
        buf.lru.splice(buf.lru.begin(), buf.lru, it->second);
        continue;  // absorbed into the dirty block
      }
      buf.lru.push_front(key);
      buf.index.emplace(key, buf.lru.begin());
      if (buf.index.size() > config.buffers_per_node) {
        buf.index.erase(buf.lru.back());
        buf.lru.pop_back();
        ++out.disk_writes_behind;  // evicted dirty block hits the disk
      }
    }
  }
  // Final flush of everything still dirty.
  for (const auto& buf : buffers) {
    out.disk_writes_behind += buf.index.size();
  }
  return out;
}

std::string WriteBehindResult::describe() const {
  std::ostringstream s;
  s << "writes=" << write_requests << " disk_through=" << disk_writes_through
    << " disk_behind=" << disk_writes_behind << " reduction=" << reduction();
  return s.str();
}

}  // namespace charisma::cache
