// Paper-fidelity regression suite: one fixed-seed study (the recorded
// benchmark configuration, scale 0.2 / seed 42) must keep every measured
// headline statistic and every per-figure curve inside the documented
// tolerance bands around the published values (analysis::paper).  Drift —
// from the generator, the simulator, the analyzers, or the figure
// sampling — fails ctest instead of silently invalidating EXPERIMENTS.md.
//
// The bands themselves live in analysis/fidelity.cpp and are documented in
// EXPERIMENTS.md ("Fidelity bands").
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/fidelity.hpp"
#include "analysis/figures.hpp"
#include "analysis/paper.hpp"
#include "cache/simulators.hpp"
#include "core/campaign.hpp"

namespace charisma::analysis {
namespace {

constexpr double kScale = 0.2;
constexpr std::uint64_t kSeed = 42;
// The recorded digest of this exact configuration (BENCH_study.json); any
// behavioural change to the workload or simulator shows up here first.
constexpr std::uint64_t kExpectedDigest = 0x5d6c862d0a86afe1ull;

/// The study and its summary are shared across tests (a full scale-0.2 run
/// is the expensive part; every assertion reads from it).
struct Fixture {
  core::StudyOutput output;
  core::StudySummary summary;
  SessionStore store;
  cache::ComputeCacheResult compute;

  Fixture()
      : output(core::run_study_at_scale(kScale, kSeed)),
        summary(core::summarize_study("fidelity", fidelity_config(), output)),
        store(output.sorted),
        compute(cache::simulate_compute_cache(output.sorted,
                                              store.read_only_sessions(),
                                              cache::ComputeCacheConfig{})) {}

  static core::StudyConfig fidelity_config() {
    core::StudyConfig config;
    config.workload.scale = kScale;
    config.workload.seed = kSeed;
    return config;
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

TEST(PaperFidelity, TraceDigestIsPinned) {
  EXPECT_EQ(fixture().output.raw.digest(), kExpectedDigest)
      << "the scale-0.2/seed-42 trace changed; if intentional, re-record "
         "BENCH_study.json and update this pin";
}

TEST(PaperFidelity, EveryCheckInsideItsBand) {
  const Fixture& f = fixture();
  const CacheFigures cache_figs{f.compute.fraction_jobs_above_75,
                                f.compute.fraction_jobs_zero};
  const auto checks = check_paper_fidelity(
      f.store, f.output.sorted, f.output.raw.header.block_size, &cache_figs);
  ASSERT_GE(checks.size(), 30u);
  for (const auto& c : checks) {
    EXPECT_TRUE(c.pass())
        << c.figure << "/" << c.name << ": measured " << c.measured
        << " vs paper " << c.expected << " (band +-" << c.tolerance << ")";
    EXPECT_TRUE(std::isfinite(c.measured)) << c.name;
  }
  // The render used by charisma_analyze agrees with the pass verdicts.
  EXPECT_NE(render_fidelity(checks).find("0 outside their band"),
            std::string::npos);
}

TEST(PaperFidelity, FigureSetCoversEveryFigure) {
  const FigureSet& figs = fixture().summary.figures;
  for (const char* name :
       {"fig4_reads", "fig4_read_bytes", "fig4_writes", "fig4_write_bytes",
        "fig5_read_only", "fig5_write_only", "fig5_read_write",
        "fig6_read_only", "fig6_write_only", "fig7_read_bytes",
        "fig7_read_blocks", "fig7_write_bytes", "table1_files_per_job",
        "table2_interval_sizes", "table3_request_sizes", "fig8_1buf",
        "fig8_50buf", "fig9_lru", "fig9_fifo"}) {
    const FigureCurve* c = figs.find(name);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_EQ(c->xs.size(), c->ys.size()) << name;
    EXPECT_FALSE(c->xs.empty()) << name;
  }
  EXPECT_EQ(figs.curves.size(), 19u);
}

TEST(PaperFidelity, CdfCurvesAreMonotoneAndBounded) {
  for (const FigureCurve& c : fixture().summary.figures.curves) {
    if (c.name.rfind("fig9", 0) == 0) continue;  // hit-rate vs buffers, not a CDF
    SCOPED_TRACE(c.name);
    double prev = 0.0;
    bool monotone = c.name.rfind("table", 0) != 0;  // tables are PDFs
    for (double y : c.ys) {
      EXPECT_GE(y, 0.0);
      EXPECT_LE(y, 1.0);
      if (monotone) {
        EXPECT_GE(y, prev);
        prev = y;
      }
    }
    if (monotone) EXPECT_DOUBLE_EQ(c.ys.back(), 1.0);
  }
}

TEST(PaperFidelity, Figure4CurveMatchesPaperAnchors) {
  const Fixture& f = fixture();
  const FigureCurve* reads = f.summary.figures.find("fig4_reads");
  const FigureCurve* writes = f.summary.figures.find("fig4_writes");
  ASSERT_NE(reads, nullptr);
  ASSERT_NE(writes, nullptr);
  // Value at the first grid position >= the 4000-byte "small request"
  // threshold; the CDF there can only exceed the exact-threshold fraction,
  // so the band gains a little slack over the scalar check's.
  const auto at_threshold = [](const FigureCurve& c) {
    for (std::size_t i = 0; i < c.xs.size(); ++i) {
      if (c.xs[i] >= static_cast<double>(paper::kSmallRequestThreshold)) {
        return c.ys[i];
      }
    }
    return c.ys.back();
  };
  EXPECT_NEAR(at_threshold(*reads), paper::kSmallReadFraction, 0.12);
  EXPECT_NEAR(at_threshold(*writes), paper::kSmallWriteFraction, 0.14);
}

TEST(PaperFidelity, SequentialityCurvesMatchPaperAnchors) {
  const FigureSet& figs = fixture().summary.figures;
  // "Fully consecutive" is the mass at exactly 1.0: one minus the curve
  // just below the end of the grid.
  const auto fully = [&](const char* name) {
    const FigureCurve* c = figs.find(name);
    EXPECT_NE(c, nullptr) << name;
    return 1.0 - c->ys[c->ys.size() - 2];  // grid position 0.95
  };
  EXPECT_NEAR(fully("fig6_write_only"), paper::kWriteOnlyFullyConsecutive,
              0.20);
  EXPECT_NEAR(fully("fig6_read_only"), paper::kReadOnlyFullyConsecutive,
              0.20);
}

TEST(PaperFidelity, CacheCurvesAgreeWithSimulatorScalars) {
  const Fixture& f = fixture();
  const FigureCurve* fig8 = f.summary.figures.find("fig8_1buf");
  ASSERT_NE(fig8, nullptr);
  // Grid position 0 holds P(rate <= 0) and position 0.75 holds
  // P(rate <= 0.75); both must agree with the simulator's own fractions
  // and land inside the Figure 8 bands around the paper's values.
  EXPECT_NEAR(fig8->ys.front(), f.compute.fraction_jobs_zero, 1e-12);
  EXPECT_NEAR(1.0 - fig8->ys[15], f.compute.fraction_jobs_above_75, 1e-12);
  EXPECT_NEAR(fig8->ys.front(), paper::kJobsAtZeroHitRate, 0.25);
  EXPECT_NEAR(1.0 - fig8->ys[15], paper::kJobsAboveHitRate75, 0.25);
}

TEST(PaperFidelity, TableCurvesMatchPaperRows) {
  const FigureSet& figs = fixture().summary.figures;
  const FigureCurve* t2 = figs.find("table2_interval_sizes");
  const FigureCurve* t3 = figs.find("table3_request_sizes");
  ASSERT_NE(t2, nullptr);
  ASSERT_NE(t3, nullptr);
  ASSERT_EQ(t2->ys.size(), paper::kTable2Percent.size());
  ASSERT_EQ(t3->ys.size(), paper::kTable3Percent.size());
  for (std::size_t b = 0; b < t2->ys.size(); ++b) {
    EXPECT_NEAR(t2->ys[b], paper::kTable2Percent[b] / 100.0, 0.15)
        << "table2 bucket " << b;
    EXPECT_NEAR(t3->ys[b], paper::kTable3Percent[b] / 100.0, 0.20)
        << "table3 bucket " << b;
  }
}

TEST(PaperFidelity, HeadlineStatsMatchSummary) {
  // The StudySummary fields the campaign aggregates are the same
  // measurements the fidelity suite checks — no second bookkeeping path.
  const Fixture& f = fixture();
  const auto checks = check_paper_fidelity(f.store, f.output.sorted,
                                           f.output.raw.header.block_size);
  const auto measured = [&](const char* name) {
    for (const auto& c : checks) {
      if (c.name == name) return c.measured;
    }
    ADD_FAILURE() << "missing check " << name;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(measured("idle_fraction"), f.summary.idle_fraction);
  EXPECT_DOUBLE_EQ(measured("multiprogrammed_fraction"),
                   f.summary.multiprogrammed_fraction);
  EXPECT_DOUBLE_EQ(measured("single_node_job_fraction"),
                   f.summary.single_node_job_fraction);
  EXPECT_DOUBLE_EQ(measured("small_read_fraction"),
                   f.summary.small_read_fraction);
  EXPECT_DOUBLE_EQ(measured("small_write_fraction"),
                   f.summary.small_write_fraction);
  EXPECT_DOUBLE_EQ(measured("temporary_fraction"),
                   f.summary.temporary_fraction);
  EXPECT_DOUBLE_EQ(measured("mode0_fraction"), f.summary.mode0_fraction);
}

}  // namespace
}  // namespace charisma::analysis
