file(REMOVE_RECURSE
  "CMakeFiles/charisma_net.dir/hypercube.cpp.o"
  "CMakeFiles/charisma_net.dir/hypercube.cpp.o.d"
  "CMakeFiles/charisma_net.dir/message.cpp.o"
  "CMakeFiles/charisma_net.dir/message.cpp.o.d"
  "libcharisma_net.a"
  "libcharisma_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charisma_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
