// charisma_analyze — offline analysis of a saved CHARISMA trace.
//
// Reads a binary trace written by the collector (e.g. via
// `trace_and_characterize --out=nas.chtr`), postprocesses it (clock fit +
// chronological sort) and runs the requested analyses, like the analysis
// programs behind the paper's §4.
//
//   charisma_analyze <trace.chtr> [--report=<section>] [--cache=<sim>]
//                    [--buffers=N] [--policy=lru|fifo|ip] [--strided]
//
//   --report:  all (default), jobs, nodes, population, files-per-job,
//              sizes, requests, sequentiality, intervals, regularity,
//              modes, sharing, paper (measured-vs-published deltas per
//              figure, with the fidelity tolerance bands)
//   --cache:   io | compute | combined  (trace-driven cache simulation)
#include <cstdio>
#include <string>

#include "analysis/analyzers.hpp"
#include "analysis/fidelity.hpp"
#include "cache/simulators.hpp"
#include "core/strided.hpp"
#include "trace/postprocess.hpp"
#include "util/flags.hpp"

using namespace charisma;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: charisma_analyze <trace.chtr> [--report=SECTION] "
               "[--cache=io|compute|combined] [--buffers=N] "
               "[--policy=lru|fifo|ip] [--strided]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv,
                    {"report", "cache", "buffers", "policy", "strided"});
  if (flags.remaining_argc() < 2) return usage();
  const std::string path = flags.remaining()[1];

  trace::TraceFile raw;
  try {
    raw = trace::TraceFile::read(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::printf("trace '%s': %llu records from %d compute / %d I/O nodes\n",
              raw.header.label.c_str(),
              static_cast<unsigned long long>(raw.record_count()),
              raw.header.compute_nodes, raw.header.io_nodes);
  const trace::SortedTrace sorted = trace::postprocess(raw);
  const analysis::SessionStore store(sorted);

  const std::string report = flags.get("report", "all");
  const auto want = [&](const char* name) {
    return report == "all" || report == name;
  };
  if (want("jobs")) {
    std::printf("--- Jobs (Figure 1) ---\n%s\n",
                analysis::analyze_job_concurrency(store).render().c_str());
  }
  if (want("nodes")) {
    std::printf("--- Nodes per job (Figure 2) ---\n%s\n",
                analysis::analyze_node_counts(store).render().c_str());
  }
  if (want("population")) {
    std::printf("--- File population (S4.2) ---\n%s\n",
                analysis::analyze_file_population(store).render().c_str());
  }
  if (want("files-per-job")) {
    std::printf("--- Files per job (Table 1) ---\n%s\n",
                analysis::analyze_files_per_job(store).render().c_str());
  }
  if (want("sizes")) {
    std::printf("--- File sizes (Figure 3) ---\n%s\n",
                analysis::analyze_file_sizes(store).render().c_str());
  }
  if (want("requests")) {
    std::printf("--- Request sizes (Figure 4) ---\n%s\n",
                analysis::analyze_request_sizes(sorted).render().c_str());
  }
  if (want("sequentiality")) {
    std::printf("--- Sequentiality (Figures 5/6) ---\n%s\n",
                analysis::analyze_sequentiality(store).render().c_str());
  }
  if (want("intervals")) {
    std::printf("--- Interval regularity (Table 2) ---\n%s\n",
                analysis::analyze_intervals(store).render().c_str());
  }
  if (want("regularity")) {
    std::printf("--- Request-size regularity (Table 3) ---\n%s\n",
                analysis::analyze_request_regularity(store).render().c_str());
  }
  if (want("modes")) {
    std::printf("--- I/O modes (S4.6) ---\n%s\n",
                analysis::analyze_mode_usage(store).render().c_str());
  }
  if (want("sharing")) {
    std::printf(
        "--- Sharing (Figure 7) ---\n%s\n",
        analysis::analyze_sharing(store, raw.header.block_size)
            .render()
            .c_str());
  }
  if (want("paper")) {
    // Figure 8's statistics come from the compute-cache replay (one buffer
    // per node, the paper's configuration).
    cache::ComputeCacheConfig cache_cfg;
    const auto compute = cache::simulate_compute_cache(
        sorted, store.read_only_sessions(), cache_cfg);
    const analysis::CacheFigures cache_figs{compute.fraction_jobs_above_75,
                                            compute.fraction_jobs_zero};
    const auto checks = analysis::check_paper_fidelity(
        store, sorted, raw.header.block_size, &cache_figs);
    std::printf("--- Paper-vs-measured deltas ---\n%s\n",
                analysis::render_fidelity(checks).c_str());
  }

  if (flags.has("cache")) {
    const auto read_only = store.read_only_sessions();
    const std::string sim = flags.get("cache", "io");
    const auto buffers =
        static_cast<std::size_t>(flags.get_int("buffers", 4000));
    const std::string pol = flags.get("policy", "lru");
    cache::Policy policy = cache::Policy::kLru;
    if (pol == "fifo") policy = cache::Policy::kFifo;
    if (pol == "ip") policy = cache::Policy::kInterprocessAware;

    if (sim == "compute") {
      cache::ComputeCacheConfig cfg;
      cfg.buffers_per_node = std::max<std::size_t>(buffers / 4000, 1);
      const auto r = cache::simulate_compute_cache(sorted, read_only, cfg);
      std::printf(
          "compute-node cache: %zu jobs, %.1f%% at zero, %.1f%% above "
          "75%%, overall hit rate %.1f%%\n",
          r.job_hit_rates.size(), r.fraction_jobs_zero * 100.0,
          r.fraction_jobs_above_75 * 100.0, r.overall_hit_rate() * 100.0);
    } else {
      cache::IoNodeSimConfig cfg;
      cfg.io_nodes = raw.header.io_nodes > 0 ? raw.header.io_nodes : 10;
      cfg.total_buffers = buffers;
      cfg.policy = policy;
      if (sim == "combined") cfg.compute_buffers_per_node = 1;
      const auto r = cache::simulate_io_cache(sorted, read_only, cfg);
      std::printf("I/O-node cache (%s, %zu buffers): %s\n",
                  to_string(policy), buffers, r.describe().c_str());
    }
  }

  if (flags.get_bool("strided", false)) {
    std::printf(
        "--- Strided rewriting (S5) ---\n%s\n",
        core::rewrite_strided(sorted, raw.header.io_nodes,
                              raw.header.block_size)
            .render()
            .c_str());
  }
  return 0;
}
