// §4.2: the file population — how many files, of which access classes,
// how many temporary, and bytes per file.
#include "common.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  auto& ctx = Context::instance();
  const auto result = analysis::analyze_file_population(ctx.store());
  std::printf("%s\n", result.render().c_str());

  namespace paper = analysis::paper;
  const double s = ctx.scale();
  Comparison cmp("S4.2: file population (counts scale with --scale)");
  cmp.row("files opened", paper::kFilesOpened * s,
          static_cast<double>(result.sessions), 0);
  cmp.percent_row("write-only share",
                  static_cast<double>(paper::kWriteOnlyFiles) /
                      paper::kFilesOpened,
                  static_cast<double>(result.write_only) /
                      static_cast<double>(result.sessions));
  cmp.percent_row("read-only share",
                  static_cast<double>(paper::kReadOnlyFiles) /
                      paper::kFilesOpened,
                  static_cast<double>(result.read_only) /
                      static_cast<double>(result.sessions));
  cmp.percent_row("read-write share",
                  static_cast<double>(paper::kReadWriteFiles) /
                      paper::kFilesOpened,
                  static_cast<double>(result.read_write) /
                      static_cast<double>(result.sessions));
  cmp.percent_row("opened but untouched",
                  static_cast<double>(paper::kUntouchedFiles) /
                      paper::kFilesOpened,
                  static_cast<double>(result.untouched) /
                      static_cast<double>(result.sessions));
  cmp.percent_row("temporary files", paper::kTemporaryOpenFraction,
                  result.temporary_fraction);
  cmp.row("mean bytes read per read file",
          util::format_bytes(
              static_cast<std::int64_t>(paper::kMeanBytesReadPerFile)),
          util::format_bytes(static_cast<std::int64_t>(
              result.mean_bytes_read_per_read_file)));
  cmp.row("mean bytes written per write file",
          util::format_bytes(
              static_cast<std::int64_t>(paper::kMeanBytesWrittenPerFile)),
          util::format_bytes(static_cast<std::int64_t>(
              result.mean_bytes_written_per_write_file)));
  cmp.print();
}

void BM_FilePopulationAnalysis(benchmark::State& state) {
  const auto& store = Context::instance().store();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_file_population(store));
  }
}
BENCHMARK(BM_FilePopulationAnalysis)->Unit(benchmark::kMicrosecond);

/// The SessionStore construction itself is the §4 workhorse; time it.
void BM_SessionStoreBuild(benchmark::State& state) {
  const auto& trace = Context::instance().study().sorted;
  for (auto _ : state) {
    analysis::SessionStore store(trace, state.range(0) != 0);
    benchmark::DoNotOptimize(store.sessions().size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(trace.records.size()) * state.iterations());
}
BENCHMARK(BM_SessionStoreBuild)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SessionStoreBuildParallel(benchmark::State& state) {
  const auto& trace = Context::instance().study().sorted;
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto store = analysis::SessionStore::build_parallel(trace, pool, true);
    benchmark::DoNotOptimize(store.sessions().size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(trace.records.size()) * state.iterations());
}
BENCHMARK(BM_SessionStoreBuildParallel)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("S4.2 (file population)", charisma::bench::reproduce)
