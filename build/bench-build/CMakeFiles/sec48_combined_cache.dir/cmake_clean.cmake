file(REMOVE_RECURSE
  "../bench/sec48_combined_cache"
  "../bench/sec48_combined_cache.pdb"
  "CMakeFiles/sec48_combined_cache.dir/sec48_combined_cache.cpp.o"
  "CMakeFiles/sec48_combined_cache.dir/sec48_combined_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec48_combined_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
