file(REMOVE_RECURSE
  "CMakeFiles/ipsc_tests.dir/ipsc/machine_test.cpp.o"
  "CMakeFiles/ipsc_tests.dir/ipsc/machine_test.cpp.o.d"
  "ipsc_tests"
  "ipsc_tests.pdb"
  "ipsc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipsc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
