// Ablation E: collective / disk-directed I/O (paper §5's closing pointer).
// Replays each (job, file) block stream through the disk model in request
// order and in disk order, measuring the positioning cost that collective
// requests could eliminate.
#include "common.hpp"

#include "core/collective.hpp"

namespace charisma::bench {
namespace {

void reproduce() {
  auto& ctx = Context::instance();
  core::CollectiveConfig cfg;
  cfg.io_nodes = ctx.study().raw.header.io_nodes;
  const auto stats = core::analyze_disk_directed(ctx.study().sorted, cfg);
  std::printf("%s\n", stats.render().c_str());

  Comparison cmp("Ablation E: disk-directed I/O (S5)");
  cmp.row("claim", "collective I/O can beat even strided requests",
          "disk-directed saves " +
              util::fmt(stats.time_reduction() * 100.0) +
              "% of per-session disk time");
  cmp.row("mechanism", "service blocks in disk order",
          std::to_string(stats.discontiguities_arrival) + " -> " +
              std::to_string(stats.discontiguities_directed) +
              " head repositionings");
  cmp.print();
}

void BM_DiskDirectedAnalysis(benchmark::State& state) {
  auto& ctx = Context::instance();
  core::CollectiveConfig cfg;
  cfg.io_nodes = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::analyze_disk_directed(ctx.study().sorted, cfg));
  }
}
BENCHMARK(BM_DiskDirectedAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace charisma::bench

CHARISMA_BENCH_MAIN("Ablation E (disk-directed I/O)",
                    charisma::bench::reproduce)
