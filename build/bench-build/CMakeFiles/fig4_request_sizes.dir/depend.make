# Empty dependencies file for fig4_request_sizes.
# This may be replaced when dependencies are built.
